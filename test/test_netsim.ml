open Bgp_netsim
module Engine = Bgp_sim.Engine
module Sched = Bgp_sim.Sched

let feq ?(eps = 1e-6) name expect got =
  if Float.abs (expect -. got) > eps then
    Alcotest.failf "%s: expected %.9f got %.9f" name expect got

(* ------------------------------------------------------------------ *)
(* Channel                                                             *)
(* ------------------------------------------------------------------ *)

let test_channel_connect_and_deliver () =
  let e = Engine.create () in
  let ch = Channel.create e ~latency:0.001 ~bandwidth_mbps:8.0 () in
  let a_connected = ref false and b_connected = ref false in
  let received = ref [] in
  Channel.set_on_connected ch Channel.A (fun () -> a_connected := true);
  Channel.set_on_connected ch Channel.B (fun () -> b_connected := true);
  Channel.set_receiver ch Channel.B (fun s -> received := (s, Engine.now e) :: !received);
  Channel.connect ch;
  Engine.run e;
  Alcotest.(check bool) "a connected" true !a_connected;
  Alcotest.(check bool) "b connected" true !b_connected;
  (* 1000 bytes at 8 Mbps = 1 ms serialization + 1 ms latency *)
  Channel.send ch Channel.A (String.make 1000 'x');
  Engine.run e;
  (match !received with
  | [ (s, t) ] ->
    Alcotest.(check int) "payload" 1000 (String.length s);
    feq ~eps:1e-6 "arrival" (0.001 +. 0.001 +. 0.001) t
  | _ -> Alcotest.fail "expected one delivery");
  Alcotest.(check int) "carried" 1000 (Channel.bytes_carried ch Channel.A)

let test_channel_serialization_order () =
  let e = Engine.create () in
  let ch = Channel.create e ~latency:0.0 ~bandwidth_mbps:8.0 () in
  let received = ref [] in
  Channel.set_receiver ch Channel.B (fun s -> received := (s, Engine.now e) :: !received);
  Channel.connect ch;
  Engine.run e;
  (* Two back-to-back 1000-byte messages serialize sequentially. *)
  Channel.send ch Channel.A (String.make 1000 'a');
  Channel.send ch Channel.A (String.make 1000 'b');
  Engine.run e;
  match List.rev !received with
  | [ (a, t1); (b, t2) ] ->
    Alcotest.(check char) "order a" 'a' a.[0];
    Alcotest.(check char) "order b" 'b' b.[0];
    feq "first at 1ms" 0.001 t1;
    feq "second at 2ms" 0.002 t2
  | _ -> Alcotest.fail "expected two deliveries"

let test_channel_close_drops () =
  let e = Engine.create () in
  let ch = Channel.create e ~latency:0.010 () in
  let received = ref 0 and closed = ref 0 in
  Channel.set_receiver ch Channel.B (fun _ -> incr received);
  Channel.set_on_closed ch Channel.A (fun () -> incr closed);
  Channel.set_on_closed ch Channel.B (fun () -> incr closed);
  Channel.connect ch;
  Engine.run e;
  Channel.send ch Channel.A "in-flight";
  Channel.close ch;
  Engine.run e;
  Alcotest.(check int) "dropped" 0 !received;
  Alcotest.(check int) "both closed" 2 !closed;
  Alcotest.(check bool) "closed state" false (Channel.is_open ch);
  (* sends on a closed channel are silently dropped *)
  Channel.send ch Channel.A "late";
  Engine.run e;
  Alcotest.(check int) "still dropped" 0 !received

(* ------------------------------------------------------------------ *)
(* Traffic                                                             *)
(* ------------------------------------------------------------------ *)

let test_traffic_pps () =
  let t = Traffic.make ~mbps:300.0 () in
  (* 300 Mbps of 64-byte packets = 585937.5 pps *)
  feq ~eps:0.1 "pps" 585937.5 (Traffic.pps t);
  let big = Traffic.make ~packet_bytes:1500 ~mbps:300.0 () in
  feq ~eps:0.1 "pps 1500B" 25000.0 (Traffic.pps big);
  feq "none" 0.0 (Traffic.pps Traffic.none)

(* ------------------------------------------------------------------ *)
(* Forwarding                                                          *)
(* ------------------------------------------------------------------ *)

let test_forwarding_dedicated () =
  let fwd =
    Forwarding.create (Forwarding.Dedicated { capacity_pps = 1.9e6 })
      ~line_rate_mbps:940.0
  in
  Forwarding.set_offered fwd (Traffic.make ~mbps:500.0 ());
  feq "under capacity" 500.0 (Forwarding.achieved_mbps fwd);
  feq "no loss" 0.0 (Forwarding.loss_ratio fwd);
  (* offered above line rate: clipped *)
  Forwarding.set_offered fwd (Traffic.make ~mbps:2000.0 ());
  Alcotest.(check bool) "clipped to line rate" true
    (Forwarding.achieved_mbps fwd <= 940.01);
  Alcotest.(check bool) "loss reported" true (Forwarding.loss_ratio fwd > 0.5);
  Alcotest.(check bool) "no control cpu" false (Forwarding.uses_control_cpu fwd)

let test_forwarding_shared_charges_sched () =
  let e = Engine.create () in
  let s = Sched.create (Engine.clock e) ~hz:800e6 ~pool:1.0 in
  let fwd =
    Forwarding.create
      (Forwarding.Shared
         { sched = s; interrupt_cycles_per_packet = 400.0;
           forwarding_cycles_per_packet = 450.0 })
      ~line_rate_mbps:315.0
  in
  Forwarding.set_offered fwd (Traffic.make ~mbps:300.0 ());
  Engine.run ~until:1.0 e;
  let acc = Sched.take_accounting s in
  (* 585937.5 pps x 400 cycles = 234.4M interrupt cycles/s *)
  feq ~eps:1e6 "interrupt cycles" 2.344e8 acc.Sched.acc_interrupt;
  feq ~eps:1e6 "forwarding cycles" 2.637e8 acc.Sched.acc_forwarding;
  feq "fully served" 300.0 (Forwarding.achieved_mbps fwd);
  Alcotest.(check bool) "uses control cpu" true (Forwarding.uses_control_cpu fwd)

let test_forwarding_shared_contention_loss () =
  let e = Engine.create () in
  let s = Sched.create (Engine.clock e) ~hz:800e6 ~pool:1.0 in
  let fwd =
    Forwarding.create
      (Forwarding.Shared
         { sched = s; interrupt_cycles_per_packet = 400.0;
           forwarding_cycles_per_packet = 450.0 })
      ~line_rate_mbps:315.0
  in
  Sched.set_forwarding_demand s ~weight:2.0 ~cycles_per_sec:0.0 ();
  Forwarding.set_offered fwd (Traffic.make ~mbps:300.0 ());
  (* Saturate the CPU with four compute-hungry user processes: the
     kernel keeps priority but not absolute priority -> small loss. *)
  let procs = List.init 4 (fun i -> Sched.add_proc s (Printf.sprintf "p%d" i)) in
  List.iter (fun p -> Sched.submit s p ~cycles:1e9 (fun () -> ())) procs;
  Engine.run ~until:0.1 e;
  let before = Forwarding.achieved_mbps fwd in
  Alcotest.(check bool) "dip under contention" true (before < 300.0);
  Alcotest.(check bool) "but most traffic still flows" true (before > 200.0);
  (* line-rate clipping happens before the CPU *)
  Forwarding.set_offered fwd (Traffic.make ~mbps:1000.0 ());
  Alcotest.(check bool) "clipped" true
    (Forwarding.achieved_mbps fwd <= 315.0)

(* ------------------------------------------------------------------ *)
(* Ip_packet: the real RFC 1812 per-packet path                        *)
(* ------------------------------------------------------------------ *)

let ip = Bgp_addr.Ipv4.of_string_exn
let pfx = Bgp_addr.Prefix.of_string_exn

let test_ip_serialize_parse () =
  let pkt =
    Ip_packet.make ~ttl:17 ~protocol:6 ~src:(ip "192.0.2.1")
      ~dst:(ip "203.0.113.9") "hello forwarding plane"
  in
  let wire = Ip_packet.serialize pkt in
  Alcotest.(check int) "length" (20 + 22) (String.length wire);
  match Ip_packet.parse wire with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok got ->
    Alcotest.(check string) "src" "192.0.2.1" (Bgp_addr.Ipv4.to_string got.Ip_packet.src);
    Alcotest.(check string) "dst" "203.0.113.9" (Bgp_addr.Ipv4.to_string got.Ip_packet.dst);
    Alcotest.(check int) "ttl" 17 got.Ip_packet.ttl;
    Alcotest.(check int) "protocol" 6 got.Ip_packet.protocol;
    Alcotest.(check string) "payload" "hello forwarding plane" got.Ip_packet.payload

let test_ip_parse_errors () =
  let pkt = Ip_packet.make ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") "x" in
  let wire = Ip_packet.serialize pkt in
  (* corrupt a header byte: checksum must catch it *)
  let b = Bytes.of_string wire in
  Bytes.set b 8 '\x09';
  (match Ip_packet.parse (Bytes.to_string b) with
  | Error "bad header checksum" -> ()
  | Error e -> Alcotest.failf "wrong error: %s" e
  | Ok _ -> Alcotest.fail "corruption undetected");
  (match Ip_packet.parse "short" with
  | Error "truncated header" -> ()
  | _ -> Alcotest.fail "truncation undetected");
  match Ip_packet.parse (wire ^ "extra") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "length mismatch undetected"

let test_ip_forwarding () =
  let fib = Bgp_fib.Fib.create () in
  let nh = { Bgp_fib.Fib.nh_addr = ip "192.0.2.254"; nh_port = 3 } in
  ignore (Bgp_fib.Fib.apply fib (Bgp_fib.Fib.Add (pfx "203.0.113.0/24", nh)));
  let pkt = Ip_packet.make ~ttl:2 ~src:(ip "10.0.0.1") ~dst:(ip "203.0.113.7") "p" in
  (match Ip_packet.forward fib pkt with
  | Ip_packet.Forwarded { next_hop; packet } ->
    Alcotest.(check int) "port" 3 next_hop.Bgp_fib.Fib.nh_port;
    Alcotest.(check int) "ttl decremented" 1 packet.Ip_packet.ttl
  | _ -> Alcotest.fail "should forward");
  (* TTL 1: expired *)
  let dying = Ip_packet.make ~ttl:1 ~src:(ip "10.0.0.1") ~dst:(ip "203.0.113.7") "p" in
  (match Ip_packet.forward fib dying with
  | Ip_packet.Ttl_expired -> ()
  | _ -> Alcotest.fail "ttl should expire");
  (* no route *)
  let lost = Ip_packet.make ~src:(ip "10.0.0.1") ~dst:(ip "172.16.0.1") "p" in
  match Ip_packet.forward fib lost with
  | Ip_packet.No_route -> ()
  | _ -> Alcotest.fail "should have no route"

let test_ip_forward_wire_incremental_checksum () =
  let fib = Bgp_fib.Fib.create () in
  let nh = { Bgp_fib.Fib.nh_addr = ip "192.0.2.254"; nh_port = 0 } in
  ignore (Bgp_fib.Fib.apply fib (Bgp_fib.Fib.Add (pfx "0.0.0.0/0", nh)));
  let pkt = Ip_packet.make ~ttl:33 ~src:(ip "10.0.0.1") ~dst:(ip "8.8.8.8") "data" in
  match Ip_packet.forward_wire fib (Ip_packet.serialize pkt) with
  | Error e -> Alcotest.failf "forward_wire: %s" e
  | Ok (_, out) -> (
    (* The patched packet must parse cleanly (checksum still valid)
       with TTL 32. *)
    match Ip_packet.parse out with
    | Ok got -> Alcotest.(check int) "ttl" 32 got.Ip_packet.ttl
    | Error e -> Alcotest.failf "incremental checksum broke parse: %s" e)

let prop_ip_roundtrip =
  QCheck2.Test.make ~name:"ip packet serialize/parse roundtrip" ~count:300
    QCheck2.Gen.(
      let* src = int_range 0 0xFFFF_FFFF in
      let* dst = int_range 0 0xFFFF_FFFF in
      let* ttl = int_range 0 255 in
      let* proto = int_range 0 255 in
      let* payload = string_size (int_range 0 100) in
      return (src, dst, ttl, proto, payload))
    (fun (src, dst, ttl, proto, payload) ->
      let pkt =
        Ip_packet.make ~ttl ~protocol:proto ~src:(Bgp_addr.Ipv4.of_int src)
          ~dst:(Bgp_addr.Ipv4.of_int dst) payload
      in
      match Ip_packet.parse (Ip_packet.serialize pkt) with
      | Ok got -> got = pkt
      | Error _ -> false)

let prop_incremental_checksum_agrees =
  (* RFC 1624 incremental update must agree with full recomputation for
     every TTL. *)
  QCheck2.Test.make ~name:"incremental checksum = full recomputation" ~count:300
    QCheck2.Gen.(
      let* src = int_range 0 0xFFFF_FFFF in
      let* dst = int_range 0 0xFFFF_FFFF in
      let* ttl = int_range 2 255 in
      return (src, dst, ttl))
    (fun (src, dst, ttl) ->
      let pkt =
        Ip_packet.make ~ttl ~src:(Bgp_addr.Ipv4.of_int src)
          ~dst:(Bgp_addr.Ipv4.of_int dst) ""
      in
      let wire = Ip_packet.serialize pkt in
      let old_ck = (Char.code wire.[10] lsl 8) lor Char.code wire.[11] in
      let incr = Ip_packet.incremental_ttl_decrement ~old_checksum:old_ck ~old_ttl:ttl in
      let full =
        let decremented = { pkt with Ip_packet.ttl = ttl - 1 } in
        let w = Ip_packet.serialize decremented in
        (Char.code w.[10] lsl 8) lor Char.code w.[11]
      in
      incr = full)

(* Property: deliveries preserve order and content for arbitrary
   message sizes and send times. *)
let prop_channel_fifo =
  QCheck2.Test.make ~name:"channel is ordered and lossless while open" ~count:100
    QCheck2.Gen.(list_size (int_range 1 30) (int_range 1 2000))
    (fun sizes ->
      let e = Engine.create () in
      let ch = Channel.create e ~latency:0.001 ~bandwidth_mbps:100.0 () in
      let received = Buffer.create 1024 in
      Channel.set_receiver ch Channel.B (fun s -> Buffer.add_string received s);
      Channel.connect ch;
      Engine.run e;
      let sent = Buffer.create 1024 in
      List.iteri
        (fun i size ->
          let payload = String.make size (Char.chr (Char.code 'a' + (i mod 26))) in
          Buffer.add_string sent payload;
          ignore
            (Engine.schedule e ~delay:(float_of_int i *. 1e-4) (fun () ->
                 Channel.send ch Channel.A payload)))
        sizes;
      Engine.run e;
      Buffer.contents sent = Buffer.contents received)

let () =
  Alcotest.run "bgp_netsim"
    [ ( "channel-properties",
        List.map QCheck_alcotest.to_alcotest [ prop_channel_fifo ] );
      ( "channel",
        [ Alcotest.test_case "connect and deliver" `Quick test_channel_connect_and_deliver;
          Alcotest.test_case "serialization order" `Quick test_channel_serialization_order;
          Alcotest.test_case "close drops in-flight" `Quick test_channel_close_drops
        ] );
      ("traffic", [ Alcotest.test_case "packet rates" `Quick test_traffic_pps ]);
      ( "ip packet",
        Alcotest.test_case "serialize/parse" `Quick test_ip_serialize_parse
        :: Alcotest.test_case "parse errors" `Quick test_ip_parse_errors
        :: Alcotest.test_case "rfc1812 forwarding" `Quick test_ip_forwarding
        :: Alcotest.test_case "incremental checksum on wire" `Quick
             test_ip_forward_wire_incremental_checksum
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_ip_roundtrip; prop_incremental_checksum_agrees ] );
      ( "forwarding",
        [ Alcotest.test_case "dedicated" `Quick test_forwarding_dedicated;
          Alcotest.test_case "shared charges scheduler" `Quick
            test_forwarding_shared_charges_sched;
          Alcotest.test_case "contention loss" `Quick
            test_forwarding_shared_contention_loss
        ] )
    ]
