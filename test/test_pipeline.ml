(* The staged update pipeline: per-stage accounting against the
   router's transaction counters, MRAI hold-back through the stage
   hooks, and — the refactor's contract — per-stage cycle totals that
   reproduce the pre-pipeline hardwired cost formulas exactly for both
   the XORP and IOS execution models. *)

module Engine = Bgp_sim.Engine
module Sched = Bgp_sim.Sched
module Channel = Bgp_netsim.Channel
module Arch = Bgp_router.Arch
module Router = Bgp_router.Router
module Rib_manager = Bgp_rib.Rib_manager
module Speaker = Bgp_speaker.Speaker
module Workload = Bgp_speaker.Workload
module Pipeline = Bgp_pipeline.Pipeline
module Metrics = Bgp_stats.Metrics
module Msg = Bgp_wire.Msg
module Codec = Bgp_wire.Codec
module Peer = Bgp_route.Peer

let ip = Bgp_addr.Ipv4.of_string_exn
let asn = Bgp_route.Asn.of_int

(* ------------------------------------------------------------------ *)
(* Registry + pipeline construction units                              *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a" in
  let h = Metrics.histogram m "b" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Metrics.observe h 2.0;
  Metrics.observe h 6.0;
  Alcotest.(check int) "counter" 5 (Metrics.value c);
  Alcotest.(check int) "hist count" 2 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "hist sum" 8.0 (Metrics.hist_sum h);
  Alcotest.(check (float 1e-9)) "hist mean" 4.0 (Metrics.hist_mean h);
  (try
     ignore (Metrics.counter m "a");
     Alcotest.fail "duplicate name accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Metrics.histogram m "a");
     Alcotest.fail "duplicate cross-kind name accepted"
   with Invalid_argument _ -> ());
  Metrics.reset_all m;
  Alcotest.(check int) "counter reset" 0 (Metrics.value c);
  Alcotest.(check int) "hist reset" 0 (Metrics.hist_count h);
  Alcotest.(check (list (pair string int)))
    "registration order survives reset"
    [ ("a", 0) ] (Metrics.counters m)

let test_pipeline_validation () =
  let mk layout specs =
    let engine = Engine.create () in
    let clock = Engine.clock engine in
    let sched = Sched.create clock ~hz:1e9 ~pool:1.0 in
    Pipeline.create ~clock ~sched ~metrics:(Metrics.create ()) ~layout specs
  in
  (try
     ignore
       (mk Pipeline.Pipelined
          [ Pipeline.spec Pipeline.Wire_decode ~proc:"p";
            Pipeline.spec Pipeline.Wire_decode ~proc:"p" ]);
     Alcotest.fail "duplicate stage accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (mk Pipeline.Pipelined []);
     Alcotest.fail "empty table accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (mk (Pipeline.Fused_paced 0.1)
          [ Pipeline.spec Pipeline.Wire_decode ~proc:"p";
            Pipeline.spec Pipeline.Decision ~proc:"q" ]);
     Alcotest.fail "fused layout with two procs accepted"
   with Invalid_argument _ -> ());
  let t =
    mk Pipeline.Pipelined
      [ Pipeline.spec Pipeline.Wire_decode ~proc:"p";
        Pipeline.spec Pipeline.Decision ~proc:"q";
        Pipeline.spec Pipeline.Export_policy ]
  in
  Alcotest.(check (list string))
    "procs in table order" [ "p"; "q" ]
    (List.map fst (Pipeline.procs t));
  Alcotest.(check bool) "inline stage has no proc" true
    (Pipeline.stage_proc t Pipeline.Export_policy = None)

(* ------------------------------------------------------------------ *)
(* A two-speaker rig (the harness topology, without its phases)        *)
(* ------------------------------------------------------------------ *)

let peer1 =
  Peer.make ~id:0 ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
    ~addr:(ip "192.0.2.1")

let peer2 =
  Peer.make ~id:1 ~asn:(asn 65002) ~router_id:(ip "192.0.2.2")
    ~addr:(ip "192.0.2.2")

let wait_until engine ~what cond =
  let deadline = Engine.now engine +. 50_000.0 in
  let rec go step =
    if cond () then ()
    else if Engine.now engine >= deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Engine.run ~until:(Engine.now engine +. step) engine;
      go (Float.min 2.0 (step *. 1.5))
    end
  in
  go 0.01

let wait_idle engine router ~what ~transactions =
  wait_until engine ~what (fun () ->
      (Router.counters router).Router.transactions >= transactions
      && Router.idle router)

type rig = {
  engine : Engine.t;
  router : Router.t;
  s1 : Speaker.t;
  s2 : Speaker.t option;
}

let make_rig ?mrai ?(two_peers = false) arch =
  let engine = Engine.create () in
  let clock = Engine.clock engine in
  let router =
    Router.create ?mrai clock arch ~local_asn:(asn 65000)
      ~router_id:(ip "10.255.0.1")
  in
  let ch1 = Channel.create engine () in
  Router.attach_peer router ~peer:peer1 ~link:(Channel.endpoint ch1 Channel.B);
  let s1 =
    Speaker.create clock ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~link:(Channel.endpoint ch1 Channel.A)
  in
  Speaker.start s1;
  wait_until engine ~what:"speaker 1 up" (fun () -> Speaker.established s1);
  let s2 =
    if not two_peers then None
    else begin
      let ch2 = Channel.create engine () in
      Router.attach_peer router ~peer:peer2
        ~link:(Channel.endpoint ch2 Channel.B);
      let s2 =
        Speaker.create clock ~asn:(asn 65002) ~router_id:(ip "192.0.2.2")
          ~link:(Channel.endpoint ch2 Channel.A)
      in
      Speaker.start s2;
      wait_until engine ~what:"speaker 2 up" (fun () ->
          Speaker.established s2);
      Some s2
    end
  in
  { engine; router; s1; s2 }

let stage r name =
  match
    List.find_opt
      (fun s -> s.Pipeline.st_stage = name)
      (Router.stage_stats r.router)
  with
  | Some s -> s
  | None -> Alcotest.failf "no stage %s" name

(* ------------------------------------------------------------------ *)
(* (a) Stage counters vs. router transactions, mixed workload          *)
(* ------------------------------------------------------------------ *)

let check_stage_accounting arch =
  let r = make_rig arch in
  let attrs =
    Workload.attrs ~speaker_asn:(asn 65001) ~next_hop:(ip "192.0.2.1")
      ~path_len:3 ()
  in
  let table = Bgp_addr.Prefix_gen.table ~seed:7 ~n:60 () in
  let ann_msgs = Speaker.announce r.s1 ~packing:4 ~attrs table in
  wait_idle r.engine r.router ~what:"announce burst" ~transactions:60;
  let wd_msgs =
    Speaker.withdraw r.s1 ~packing:3 (Array.sub table 0 30)
  in
  wait_idle r.engine r.router ~what:"withdraw burst" ~transactions:90;
  let c = Router.counters r.router in
  Alcotest.(check int) "transactions" 90 c.Router.transactions;
  (* Every prefix of every UPDATE flowed through decode and Adj-RIB-In
     exactly once: their unit counters must re-derive the router's
     transaction count. *)
  Alcotest.(check int) "wire-decode units = transactions" 90
    (stage r "wire-decode").Pipeline.st_units;
  Alcotest.(check int) "adj-rib-in units = transactions" 90
    (stage r "adj-rib-in").Pipeline.st_units;
  (* One batch per UPDATE message. *)
  Alcotest.(check int) "batches = update messages" (ann_msgs + wd_msgs)
    (stage r "wire-decode").Pipeline.st_batches;
  Alcotest.(check int) "batches = updates_rx" c.Router.updates_rx
    (stage r "wire-decode").Pipeline.st_batches;
  (* Decision considered one candidate per fresh announcement, none per
     withdrawal; FIB saw 60 adds + 30 withdraws. *)
  Alcotest.(check int) "decision units = candidates" 60
    (stage r "decision").Pipeline.st_units;
  Alcotest.(check int) "fib-install units = deltas" 90
    (stage r "fib-install").Pipeline.st_units;
  (* The RIB's registry-backed counters agree. *)
  Alcotest.(check int) "rib.updates_processed" 90
    (Rib_manager.stats (Router.rib r.router)).Rib_manager.updates_processed;
  (* reset_counters clears the whole registry: router, rib, stages. *)
  Router.reset_counters r.router;
  Alcotest.(check int) "stage counters reset" 0
    (stage r "wire-decode").Pipeline.st_units;
  Alcotest.(check int) "rib counters reset" 0
    (Rib_manager.stats (Router.rib r.router)).Rib_manager.updates_processed;
  Alcotest.(check int) "router counters reset" 0
    (Router.counters r.router).Router.transactions

let test_stage_accounting_xorp () = check_stage_accounting Arch.pentium3
let test_stage_accounting_ios () = check_stage_accounting Arch.cisco3620

(* ------------------------------------------------------------------ *)
(* (b) MRAI holds re-advertisement until the timer fires               *)
(* ------------------------------------------------------------------ *)

let test_mrai_holds_readvertisement () =
  let interval = 30.0 in
  let r = make_rig ~mrai:interval ~two_peers:true Arch.pentium3 in
  let s2 = Option.get r.s2 in
  let prefix = Bgp_addr.Prefix.of_string_exn "203.0.113.0/24" in
  let attrs len =
    Workload.attrs ~speaker_asn:(asn 65001) ~next_hop:(ip "192.0.2.1")
      ~path_len:len ()
  in
  (* First advertisement: the peer's MRAI timer is unarmed, so the
     router flushes immediately and arms it. *)
  ignore (Speaker.announce r.s1 ~packing:1 ~attrs:(attrs 3) [| prefix |]);
  wait_idle r.engine r.router ~what:"first announce" ~transactions:1;
  wait_until r.engine ~what:"peer 2 receives initial route" (fun () ->
      Hashtbl.mem (Speaker.received_prefix_set s2) prefix);
  let u0 = Speaker.updates_received s2 in
  let armed_at = Engine.now r.engine in
  (* Re-advertise with a different path while the timer is armed: the
     decision changes, but the advertisement must wait. *)
  ignore (Speaker.announce r.s1 ~packing:1 ~attrs:(attrs 5) [| prefix |]);
  wait_idle r.engine r.router ~what:"second announce" ~transactions:2;
  Alcotest.(check bool) "still within the MRAI window" true
    (Engine.now r.engine < armed_at +. interval);
  Alcotest.(check int) "re-advertisement held back" u0
    (Speaker.updates_received s2);
  Alcotest.(check int) "held advertisement counted by the MRAI stage" 1
    (stage r "mrai-pacing").Pipeline.st_units;
  (* Let the timer fire: the buffered advertisement goes out. *)
  Engine.run ~until:(armed_at +. interval +. 5.0) r.engine;
  wait_until r.engine ~what:"deferred flush" (fun () ->
      Speaker.updates_received s2 > u0);
  Alcotest.(check int) "exactly one deferred update" (u0 + 1)
    (Speaker.updates_received s2)

(* ------------------------------------------------------------------ *)
(* (c) Per-stage cycles reproduce the pre-pipeline cost formulas       *)
(* ------------------------------------------------------------------ *)

(* Expected totals computed from the original hardwired formulas for a
   single-peer, packing-1 workload of [n] fresh announcements followed
   by [n] withdrawals: every announcement selects its 1 candidate and
   adds a FIB entry; every withdrawal has 0 candidates and removes one.
   No advertisements are emitted (the only peer is the source: split
   horizon).  Byte counts mirror the speaker's message construction. *)
type expected = { e_wire : float; e_policy : float; e_decision : float;
                  e_fib : float }

let expected_cycles ~(model : [ `Xorp | `Ios ]) (c : Arch.cost_model) attrs
    table =
  let fi = float_of_int in
  let e = { e_wire = 0.0; e_policy = 0.0; e_decision = 0.0; e_fib = 0.0 } in
  Array.fold_left
    (fun e p ->
      let ann_bytes = Codec.encoded_size (Msg.announcement attrs [ p ]) in
      let wd_bytes = Codec.encoded_size (Msg.withdrawal [ p ]) in
      let wire =
        (* announce + withdraw receive paths *)
        c.Arch.cyc_per_msg_rx
        +. (fi ann_bytes *. c.Arch.cyc_per_byte)
        +. c.Arch.cyc_per_prefix_parse
        +. c.Arch.cyc_per_msg_rx
        +. (fi wd_bytes *. c.Arch.cyc_per_byte)
        +. c.Arch.cyc_per_withdraw_parse
      in
      let policy, decision, fib =
        match model with
        | `Xorp ->
          ( (* one prefix x one peer, twice *)
            2.0 *. c.Arch.cyc_per_policy_unit,
            (* announce: 1 candidate + 1 Loc-RIB change; withdraw: 0
               candidates + 1 change + the half-lookup penalty *)
            c.Arch.cyc_per_candidate +. c.Arch.cyc_per_rib_change
            +. c.Arch.cyc_per_rib_change
            +. (0.5 *. c.Arch.cyc_per_candidate),
            (* one FEA IPC + one delta each way *)
            2.0 *. (c.Arch.cyc_per_fib_msg +. c.Arch.cyc_per_fib_delta) )
        | `Ios ->
          ( 0.0,
            (* no half-lookup penalty in the monolithic model *)
            c.Arch.cyc_per_candidate +. (2.0 *. c.Arch.cyc_per_rib_change),
            (* no FEA IPC term *)
            2.0 *. c.Arch.cyc_per_fib_delta )
      in
      { e_wire = e.e_wire +. wire; e_policy = e.e_policy +. policy;
        e_decision = e.e_decision +. decision; e_fib = e.e_fib +. fib })
    e table

let close what expected actual =
  let tol = 1e-6 *. Float.max 1.0 (Float.abs expected) in
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.3f cycles, pipeline charged %.3f" what
      expected actual

let check_legacy_cycles ~model arch =
  let r = make_rig arch in
  let attrs =
    Workload.attrs ~speaker_asn:(asn 65001) ~next_hop:(ip "192.0.2.1")
      ~path_len:3 ()
  in
  let table = Bgp_addr.Prefix_gen.table ~seed:11 ~n:10 () in
  ignore (Speaker.announce r.s1 ~packing:1 ~attrs table);
  wait_idle r.engine r.router ~what:"announces" ~transactions:10;
  ignore (Speaker.withdraw r.s1 ~packing:1 table);
  wait_idle r.engine r.router ~what:"withdraws" ~transactions:20;
  let e = expected_cycles ~model arch.Arch.cost attrs table in
  let cycles name = (stage r name).Pipeline.st_cycles in
  close "wire-decode" e.e_wire (cycles "wire-decode");
  close "import-policy" e.e_policy (cycles "import-policy");
  close "decision" e.e_decision (cycles "decision");
  close "fib-install" e.e_fib (cycles "fib-install");
  close "end-to-end total"
    (e.e_wire +. e.e_policy +. e.e_decision +. e.e_fib)
    (List.fold_left
       (fun acc s -> acc +. s.Pipeline.st_cycles)
       0.0 (Router.stage_stats r.router))

let test_legacy_cycles_xorp () = check_legacy_cycles ~model:`Xorp Arch.pentium3
let test_legacy_cycles_ios () = check_legacy_cycles ~model:`Ios Arch.cisco3620

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "bgp pipeline"
    [ ( "registry",
        [ Alcotest.test_case "counters and histograms" `Quick
            test_metrics_registry ] );
      ( "construction",
        [ Alcotest.test_case "validation" `Quick test_pipeline_validation ] );
      ( "accounting",
        [ Alcotest.test_case "stage counters (xorp)" `Quick
            test_stage_accounting_xorp;
          Alcotest.test_case "stage counters (ios)" `Quick
            test_stage_accounting_ios ] );
      ( "mrai",
        [ Alcotest.test_case "holds re-advertisement" `Quick
            test_mrai_holds_readvertisement ] );
      ( "cost parity",
        [ Alcotest.test_case "xorp stage cycles = legacy formulas" `Quick
            test_legacy_cycles_xorp;
          Alcotest.test_case "ios stage cycles = legacy formulas" `Quick
            test_legacy_cycles_ios ] ) ]
