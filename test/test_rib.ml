open Bgp_rib
module A = Bgp_route.Attrs
module R = Bgp_route.Route
module As_path = Bgp_route.As_path
module Asn = Bgp_route.Asn
module Peer = Bgp_route.Peer
module Community = Bgp_route.Community
module Fib = Bgp_fib.Fib
module Policy = Bgp_policy.Policy

let ip = Bgp_addr.Ipv4.of_string_exn
let pfx = Bgp_addr.Prefix.of_string_exn
let asn = Asn.of_int

let local_asn = asn 65000
let router_id = ip "192.0.2.254"

let peer1 =
  Peer.make ~id:0 ~asn:(asn 65001) ~router_id:(ip "192.0.2.1") ~addr:(ip "192.0.2.1")

let peer2 =
  Peer.make ~id:1 ~asn:(asn 65002) ~router_id:(ip "192.0.2.2") ~addr:(ip "192.0.2.2")

let ibgp_peer =
  Peer.make ~id:2 ~asn:local_asn ~router_id:(ip "192.0.2.3") ~addr:(ip "192.0.2.3")

let attrs ?origin ?med ?local_pref ?(communities = []) ~nh path =
  A.make ?origin ?med ?local_pref ~communities
    ~as_path:(As_path.of_asns (List.map asn path))
    ~next_hop:(ip nh) ()

let route ~prefix ~from ?origin ?med ?local_pref ?(communities = []) ~nh path =
  R.make ~prefix:(pfx prefix)
    ~attrs:(attrs ?origin ?med ?local_pref ~communities ~nh path)
    ~from

(* ------------------------------------------------------------------ *)
(* Decision process                                                    *)
(* ------------------------------------------------------------------ *)

let check_winner name expected_rule winner loser =
  let c, rule = Decision.compare_routes ~local_asn winner loser in
  if c <= 0 then Alcotest.failf "%s: wrong winner" name;
  Alcotest.(check string) (name ^ " rule")
    (Format.asprintf "%a" Decision.pp_rule expected_rule)
    (Format.asprintf "%a" Decision.pp_rule rule);
  (* Antisymmetry *)
  let c', _ = Decision.compare_routes ~local_asn loser winner in
  if c' >= 0 then Alcotest.failf "%s: not antisymmetric" name

let test_decision_local_pref () =
  check_winner "local pref" Decision.Local_pref
    (route ~prefix:"10.0.0.0/8" ~from:peer1 ~local_pref:200 ~nh:"192.0.2.1"
       [ 65001; 1; 2; 3 ])
    (route ~prefix:"10.0.0.0/8" ~from:peer2 ~local_pref:100 ~nh:"192.0.2.2" [ 65002 ])

let test_decision_default_local_pref () =
  (* Missing LOCAL_PREF counts as 100. *)
  check_winner "default lp" Decision.Local_pref
    (route ~prefix:"10.0.0.0/8" ~from:peer1 ~local_pref:150 ~nh:"192.0.2.1"
       [ 65001; 9; 9 ])
    (route ~prefix:"10.0.0.0/8" ~from:peer2 ~nh:"192.0.2.2" [ 65002 ])

let test_decision_path_length () =
  check_winner "path length" Decision.Path_length
    (route ~prefix:"10.0.0.0/8" ~from:peer2 ~nh:"192.0.2.2" [ 65002; 7 ])
    (route ~prefix:"10.0.0.0/8" ~from:peer1 ~nh:"192.0.2.1" [ 65001; 7; 8 ])

let test_decision_origin () =
  check_winner "origin" Decision.Origin
    (route ~prefix:"10.0.0.0/8" ~from:peer1 ~origin:A.Igp ~nh:"192.0.2.1" [ 65001 ])
    (route ~prefix:"10.0.0.0/8" ~from:peer2 ~origin:A.Incomplete ~nh:"192.0.2.2"
       [ 65002 ])

let test_decision_med_same_neighbor () =
  (* Same neighbor AS: lower MED wins. *)
  check_winner "med" Decision.Med
    (route ~prefix:"10.0.0.0/8" ~from:peer1 ~med:10 ~nh:"192.0.2.1" [ 7018; 1 ])
    (route ~prefix:"10.0.0.0/8" ~from:peer2 ~med:50 ~nh:"192.0.2.2" [ 7018; 2 ])

let test_decision_med_different_neighbor () =
  (* Different neighbor AS: MED is skipped, falls through to router id. *)
  let a = route ~prefix:"10.0.0.0/8" ~from:peer1 ~med:500 ~nh:"192.0.2.1" [ 7018; 1 ] in
  let b = route ~prefix:"10.0.0.0/8" ~from:peer2 ~med:10 ~nh:"192.0.2.2" [ 701; 2 ] in
  let c, rule = Decision.compare_routes ~local_asn a b in
  Alcotest.(check bool) "peer1 wins by router id" true (c > 0);
  Alcotest.(check string) "rule" "router-id"
    (Format.asprintf "%a" Decision.pp_rule rule)

let test_decision_missing_med_is_best () =
  check_winner "missing med" Decision.Med
    (route ~prefix:"10.0.0.0/8" ~from:peer2 ~nh:"192.0.2.2" [ 7018; 2 ])
    (route ~prefix:"10.0.0.0/8" ~from:peer1 ~med:5 ~nh:"192.0.2.1" [ 7018; 1 ])

let test_decision_ebgp_over_ibgp () =
  check_winner "ebgp" Decision.Ebgp_over_ibgp
    (route ~prefix:"10.0.0.0/8" ~from:peer2 ~nh:"192.0.2.2" [ 65002 ])
    (route ~prefix:"10.0.0.0/8" ~from:ibgp_peer ~nh:"192.0.2.3" [ 65009 ])

let test_decision_local_wins () =
  let local = R.local ~prefix:(pfx "10.0.0.0/8") ~next_hop:(ip "0.0.0.1") in
  check_winner "local" Decision.Local_origin local
    (route ~prefix:"10.0.0.0/8" ~from:peer1 ~local_pref:10000 ~nh:"192.0.2.1" [ 1 ])

let test_decision_router_id_tiebreak () =
  check_winner "router id" Decision.Router_id
    (route ~prefix:"10.0.0.0/8" ~from:peer1 ~nh:"192.0.2.1" [ 65001 ])
    (route ~prefix:"10.0.0.0/8" ~from:peer2 ~nh:"192.0.2.2" [ 65002 ])

let test_select_permutation_invariant () =
  let rs =
    [ route ~prefix:"10.0.0.0/8" ~from:peer1 ~nh:"192.0.2.1" [ 65001; 4; 5 ];
      route ~prefix:"10.0.0.0/8" ~from:peer2 ~nh:"192.0.2.2" [ 65002; 4 ];
      route ~prefix:"10.0.0.0/8" ~from:ibgp_peer ~nh:"192.0.2.3" [ 65009; 4; 5; 6 ]
    ]
  in
  let best = Decision.select ~local_asn rs in
  (match best with
  | Some r -> Alcotest.(check int) "shortest path wins" 1 (R.from r).Peer.id
  | None -> Alcotest.fail "select none");
  (* every permutation gives the same winner *)
  let rec perms = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          List.map (fun rest -> x :: rest) (perms (List.filter (fun y -> y != x) l)))
        l
  in
  List.iter
    (fun p ->
      match Decision.select ~local_asn p, best with
      | Some a, Some b ->
        if not (R.equal a b) then Alcotest.fail "permutation changed winner"
      | _ -> Alcotest.fail "select none")
    (perms rs);
  Alcotest.(check bool) "empty" true (Decision.select ~local_asn [] = None)

(* ------------------------------------------------------------------ *)
(* Rib_manager                                                         *)
(* ------------------------------------------------------------------ *)

let fresh ?import ?export () =
  let t = Rib_manager.create ?import ?export ~local_asn ~router_id () in
  Rib_manager.add_peer t peer1;
  Rib_manager.add_peer t peer2;
  t

let test_first_announcement () =
  let t = fresh () in
  let o =
    Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
      (attrs ~nh:"192.0.2.1" [ 65001; 7 ])
  in
  Alcotest.(check bool) "new" true (o.Rib_manager.adj_in_change = `New);
  Alcotest.(check bool) "loc changed" true o.Rib_manager.loc_changed;
  (match o.Rib_manager.fib_deltas with
  | [ Fib.Add (p, nh) ] ->
    Alcotest.(check string) "prefix" "203.0.113.0/24" (Bgp_addr.Prefix.to_string p);
    Alcotest.(check int) "port" 0 nh.Fib.nh_port;
    Alcotest.(check string) "nh" "192.0.2.1" (Bgp_addr.Ipv4.to_string nh.Fib.nh_addr)
  | _ -> Alcotest.fail "expected one Add");
  (* announced to peer2 only (split horizon), with our AS prepended and
     next-hop-self *)
  (match o.Rib_manager.announcements with
  | [ { Rib_manager.dest; ann_attrs = Some a; _ } ] ->
    let a = A.Interned.value a in
    Alcotest.(check int) "dest" 1 dest.Peer.id;
    Alcotest.(check (option int)) "first hop is us" (Some 65000)
      (Option.map Asn.to_int (As_path.first_hop a.A.as_path));
    Alcotest.(check string) "next hop self" "192.0.2.254"
      (Bgp_addr.Ipv4.to_string a.A.next_hop)
  | _ -> Alcotest.fail "expected one announcement to peer2");
  Alcotest.(check int) "adj_in" 1 (Rib_manager.adj_in_size t peer1);
  Alcotest.(check int) "adj_out peer2" 1 (Rib_manager.adj_out_size t peer2);
  Alcotest.(check int) "adj_out peer1 empty" 0 (Rib_manager.adj_out_size t peer1)

let test_duplicate_announcement_noop () =
  let t = fresh () in
  let a = attrs ~nh:"192.0.2.1" [ 65001; 7 ] in
  ignore (Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24") a);
  let o = Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24") a in
  Alcotest.(check bool) "unchanged" true (o.Rib_manager.adj_in_change = `Unchanged);
  Alcotest.(check bool) "no loc change" false o.Rib_manager.loc_changed;
  Alcotest.(check int) "no deltas" 0 (List.length o.Rib_manager.fib_deltas);
  Alcotest.(check int) "no announcements" 0 (List.length o.Rib_manager.announcements)

let test_longer_path_no_fib_change () =
  (* Scenario 5/6 analog: second peer offers a worse route. *)
  let t = fresh () in
  ignore
    (Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.1" [ 65001; 7 ]));
  let o =
    Rib_manager.announce t ~from:peer2 (pfx "203.0.113.0/24")
      (attrs ~nh:"192.0.2.2" [ 65002; 7; 8; 9 ])
  in
  Alcotest.(check bool) "adj-in new" true (o.Rib_manager.adj_in_change = `New);
  Alcotest.(check bool) "loc unchanged" false o.Rib_manager.loc_changed;
  Alcotest.(check int) "no fib deltas" 0 (List.length o.Rib_manager.fib_deltas);
  Alcotest.(check int) "no announcements" 0 (List.length o.Rib_manager.announcements);
  Alcotest.(check int) "candidates considered" 2 o.Rib_manager.candidates

let test_shorter_path_replaces () =
  (* Scenario 7/8 analog: second peer offers a better route. *)
  let t = fresh () in
  ignore
    (Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.1" [ 65001; 7; 8; 9 ]));
  let o =
    Rib_manager.announce t ~from:peer2 (pfx "203.0.113.0/24")
      (attrs ~nh:"192.0.2.2" [ 65002; 7 ])
  in
  Alcotest.(check bool) "loc changed" true o.Rib_manager.loc_changed;
  (match o.Rib_manager.fib_deltas with
  | [ Fib.Replace (_, nh) ] -> Alcotest.(check int) "new port" 1 nh.Fib.nh_port
  | _ -> Alcotest.fail "expected Replace");
  (* peer1 gets the new best; peer2 gets a withdraw of the stale
     advertisement (the new best came from peer2 itself). *)
  let to1 = List.filter (fun a -> a.Rib_manager.dest.Peer.id = 0) o.Rib_manager.announcements in
  let to2 = List.filter (fun a -> a.Rib_manager.dest.Peer.id = 1) o.Rib_manager.announcements in
  (match to1 with
  | [ { Rib_manager.ann_attrs = Some _; _ } ] -> ()
  | _ -> Alcotest.fail "peer1 should get announcement");
  match to2 with
  | [ { Rib_manager.ann_attrs = None; _ } ] -> ()
  | _ -> Alcotest.fail "peer2 should get withdraw"

let test_withdraw_falls_back () =
  let t = fresh () in
  ignore
    (Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.1" [ 65001; 7 ]));
  ignore
    (Rib_manager.announce t ~from:peer2 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.2" [ 65002; 7; 8 ]));
  let o = Rib_manager.withdraw t ~from:peer1 (pfx "203.0.113.0/24") in
  Alcotest.(check bool) "removed" true (o.Rib_manager.adj_in_change = `Removed);
  Alcotest.(check bool) "loc changed" true o.Rib_manager.loc_changed;
  (match o.Rib_manager.fib_deltas with
  | [ Fib.Replace (_, nh) ] -> Alcotest.(check int) "fallback port" 1 nh.Fib.nh_port
  | _ -> Alcotest.fail "expected Replace to fallback");
  (* withdraw of the last route clears everything *)
  let o2 = Rib_manager.withdraw t ~from:peer2 (pfx "203.0.113.0/24") in
  (match o2.Rib_manager.fib_deltas with
  | [ Fib.Withdraw _ ] -> ()
  | _ -> Alcotest.fail "expected Withdraw");
  Alcotest.(check int) "loc empty" 0 (Loc_rib.size (Rib_manager.loc_rib t));
  (* withdrawing again is a no-op *)
  let o3 = Rib_manager.withdraw t ~from:peer2 (pfx "203.0.113.0/24") in
  Alcotest.(check bool) "absent" true (o3.Rib_manager.adj_in_change = `Absent)

let test_loop_detection () =
  let t = fresh () in
  let o =
    Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
      (attrs ~nh:"192.0.2.1" [ 65001; 65000; 7 ])
  in
  Alcotest.(check bool) "loop" true (o.Rib_manager.adj_in_change = `Loop);
  Alcotest.(check int) "nothing stored" 0 (Rib_manager.adj_in_size t peer1);
  Alcotest.(check int) "loc empty" 0 (Loc_rib.size (Rib_manager.loc_rib t));
  (* a looping re-announcement of an existing route removes it *)
  ignore
    (Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.1" [ 65001; 7 ]));
  let o2 =
    Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
      (attrs ~nh:"192.0.2.1" [ 65001; 65000 ])
  in
  Alcotest.(check bool) "loop drop" true (o2.Rib_manager.adj_in_change = `Loop);
  Alcotest.(check int) "route dropped" 0 (Loc_rib.size (Rib_manager.loc_rib t))

let test_local_injection_wins () =
  let t = fresh () in
  ignore
    (Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.1" [ 65001 ]));
  let o = Rib_manager.inject_local t ~prefix:(pfx "203.0.113.0/24") ~next_hop:(ip "0.0.0.1") in
  Alcotest.(check bool) "loc changed" true o.Rib_manager.loc_changed;
  match Loc_rib.find (Rib_manager.loc_rib t) (pfx "203.0.113.0/24") with
  | Some r -> Alcotest.(check bool) "local" true (Peer.is_local (R.from r))
  | None -> Alcotest.fail "loc missing"

let test_export_full () =
  let t = fresh () in
  let table = Bgp_addr.Prefix_gen.table ~seed:5 ~n:50 () in
  Array.iter
    (fun p ->
      ignore (Rib_manager.announce t ~from:peer1 p (attrs ~nh:"192.0.2.1" [ 65001; 3 ])))
    table;
  (* peer2's adj-out was already populated incrementally; flush it by
     using a third, late-joining peer as in Phase 2. *)
  let peer3 =
    Peer.make ~id:7 ~asn:(asn 65007) ~router_id:(ip "192.0.2.7") ~addr:(ip "192.0.2.7")
  in
  Rib_manager.add_peer t peer3;
  let anns = Rib_manager.export_full t peer3 in
  Alcotest.(check int) "all announced" 50 (List.length anns);
  Alcotest.(check int) "adj out" 50 (Rib_manager.adj_out_size t peer3);
  List.iter
    (fun a ->
      match a.Rib_manager.ann_attrs with
      | Some at ->
        let at = A.Interned.value at in
        Alcotest.(check (option int)) "prepended" (Some 65000)
          (Option.map Asn.to_int (As_path.first_hop at.A.as_path))
      | None -> Alcotest.fail "export_full must not withdraw")
    anns;
  (* idempotent: syncing again announces nothing new *)
  Alcotest.(check int) "idempotent" 0 (List.length (Rib_manager.export_full t peer3))

let test_refresh_resends () =
  let t = fresh () in
  let table = Bgp_addr.Prefix_gen.table ~seed:8 ~n:20 () in
  Array.iter
    (fun p ->
      ignore (Rib_manager.announce t ~from:peer1 p (attrs ~nh:"192.0.2.1" [ 65001 ])))
    table;
  Alcotest.(check int) "adj-out populated" 20 (Rib_manager.adj_out_size t peer2);
  (* a second export_full is a no-op; refresh forces the resend *)
  Alcotest.(check int) "export_full idempotent" 0
    (List.length (Rib_manager.export_full t peer2));
  let again = Rib_manager.refresh t peer2 in
  Alcotest.(check int) "refresh resends all" 20 (List.length again);
  Alcotest.(check int) "adj-out restored" 20 (Rib_manager.adj_out_size t peer2)

let test_peer_down () =
  let t = fresh () in
  let table = Bgp_addr.Prefix_gen.table ~seed:6 ~n:30 () in
  Array.iter
    (fun p ->
      ignore (Rib_manager.announce t ~from:peer1 p (attrs ~nh:"192.0.2.1" [ 65001 ])))
    table;
  (* ten of them also known via peer2 (longer path) *)
  Array.iteri
    (fun i p ->
      if i < 10 then
        ignore
          (Rib_manager.announce t ~from:peer2 p (attrs ~nh:"192.0.2.2" [ 65002; 9 ])))
    table;
  let o = Rib_manager.peer_down t peer1 in
  Alcotest.(check int) "adj_in flushed" 0 (Rib_manager.adj_in_size t peer1);
  Alcotest.(check int) "loc keeps fallbacks" 10 (Loc_rib.size (Rib_manager.loc_rib t));
  let withdraws =
    List.filter (function Fib.Withdraw _ -> true | _ -> false) o.Rib_manager.fib_deltas
  in
  let replaces =
    List.filter (function Fib.Replace _ -> true | _ -> false) o.Rib_manager.fib_deltas
  in
  Alcotest.(check int) "withdraws" 20 (List.length withdraws);
  Alcotest.(check int) "replaces" 10 (List.length replaces)

let test_import_policy_filters () =
  let reject_peer1 =
    Policy.make ~name:"no-65001"
      [ { Policy.term_name = "kill"; conds = [ Policy.Neighbor_as (asn 65001) ];
          verdict = Policy.Reject }
      ]
  in
  let t = Rib_manager.create ~import:reject_peer1 ~local_asn ~router_id () in
  Rib_manager.add_peer t peer1;
  Rib_manager.add_peer t peer2;
  let o =
    Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
      (attrs ~nh:"192.0.2.1" [ 65001; 7 ])
  in
  Alcotest.(check bool) "stored in adj-in" true (o.Rib_manager.adj_in_change = `New);
  Alcotest.(check bool) "but not selected" false o.Rib_manager.loc_changed;
  Alcotest.(check int) "loc empty" 0 (Loc_rib.size (Rib_manager.loc_rib t));
  (* peer2's route passes *)
  let o2 =
    Rib_manager.announce t ~from:peer2 (pfx "203.0.113.0/24")
      (attrs ~nh:"192.0.2.2" [ 65002; 7; 8; 9 ])
  in
  Alcotest.(check bool) "peer2 selected" true o2.Rib_manager.loc_changed

let test_import_policy_local_pref_overrides () =
  (* Classic Gao-Rexford: prefer customer (peer2) via LOCAL_PREF even
     though its path is longer. *)
  let prefer_peer2 =
    Policy.make ~name:"prefer-65002"
      [ { Policy.term_name = "customer"; conds = [ Policy.Neighbor_as (asn 65002) ];
          verdict = Policy.Accept [ Policy.Set_local_pref 200 ] }
      ]
  in
  let t = Rib_manager.create ~import:prefer_peer2 ~local_asn ~router_id () in
  Rib_manager.add_peer t peer1;
  Rib_manager.add_peer t peer2;
  ignore
    (Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.1" [ 65001 ]));
  ignore
    (Rib_manager.announce t ~from:peer2 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.2" [ 65002; 7; 8; 9 ]));
  match Loc_rib.find (Rib_manager.loc_rib t) (pfx "203.0.113.0/24") with
  | Some r -> Alcotest.(check int) "peer2 won" 1 (R.from r).Peer.id
  | None -> Alcotest.fail "loc missing"

let test_no_export_community () =
  let t = fresh () in
  let o =
    Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
      (attrs ~communities:[ Community.no_export ] ~nh:"192.0.2.1" [ 65001 ])
  in
  Alcotest.(check bool) "selected" true o.Rib_manager.loc_changed;
  Alcotest.(check int) "not exported to ebgp peer" 0
    (List.length o.Rib_manager.announcements)

let test_stats_accumulate () =
  let t = fresh () in
  ignore
    (Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.1" [ 65001 ]));
  ignore (Rib_manager.withdraw t ~from:peer1 (pfx "203.0.113.0/24"));
  let s = Rib_manager.stats t in
  Alcotest.(check int) "updates" 2 s.Rib_manager.updates_processed;
  Alcotest.(check int) "decisions" 2 s.Rib_manager.decisions_run;
  Alcotest.(check int) "loc changes" 2 s.Rib_manager.loc_rib_changes;
  Alcotest.(check bool) "announcements" true (s.Rib_manager.announcements_emitted >= 2);
  Alcotest.(check bool) "policy work" true (s.Rib_manager.policy_units > 0)

(* ------------------------------------------------------------------ *)
(* Route reflection (RFC 4456) and IBGP rules                          *)
(* ------------------------------------------------------------------ *)

let ibgp_a =
  Peer.make ~id:10 ~asn:local_asn ~router_id:(ip "10.0.0.10") ~addr:(ip "10.0.0.10")

let ibgp_b =
  Peer.make ~id:11 ~asn:local_asn ~router_id:(ip "10.0.0.11") ~addr:(ip "10.0.0.11")

let ibgp_c =
  Peer.make ~id:12 ~asn:local_asn ~router_id:(ip "10.0.0.12") ~addr:(ip "10.0.0.12")

let test_ibgp_no_readvertisement () =
  (* Base RFC 4271 rule: IBGP-learned routes never go to IBGP peers. *)
  let t = Rib_manager.create ~local_asn ~router_id () in
  Rib_manager.add_peer t ibgp_a;
  Rib_manager.add_peer t ibgp_b;
  Rib_manager.add_peer t peer1 (* EBGP *);
  let o =
    Rib_manager.announce t ~from:ibgp_a (pfx "203.0.113.0/24")
      (attrs ~local_pref:100 ~nh:"10.0.0.10" [ 64999 ])
  in
  let dests = List.map (fun a -> a.Rib_manager.dest.Peer.id) o.Rib_manager.announcements in
  Alcotest.(check (list int)) "only the EBGP peer hears it" [ 0 ] dests

let test_reflection_client_to_all () =
  let t = Rib_manager.create ~local_asn ~router_id () in
  Rib_manager.add_peer ~rr_client:true t ibgp_a;
  Rib_manager.add_peer t ibgp_b (* non-client *);
  Rib_manager.add_peer ~rr_client:true t ibgp_c (* another client *);
  let o =
    Rib_manager.announce t ~from:ibgp_a (pfx "203.0.113.0/24")
      (attrs ~nh:"10.0.0.10" [ 64999 ])
  in
  let dests =
    List.sort compare
      (List.map (fun a -> a.Rib_manager.dest.Peer.id) o.Rib_manager.announcements)
  in
  (* client route reflects to non-clients and other clients alike *)
  Alcotest.(check (list int)) "reflected to b and c" [ 11; 12 ] dests;
  List.iter
    (fun a ->
      match a.Rib_manager.ann_attrs with
      | Some at ->
        let at = A.Interned.value at in
        Alcotest.(check (option string)) "originator stamped" (Some "10.0.0.10")
          (Option.map Bgp_addr.Ipv4.to_string at.A.originator_id);
        Alcotest.(check (list string)) "cluster list grew" [ "192.0.2.254" ]
          (List.map Bgp_addr.Ipv4.to_string at.A.cluster_list);
        (* reflection must not touch path or next hop *)
        Alcotest.(check int) "path preserved" 1 (As_path.length at.A.as_path);
        Alcotest.(check string) "next hop preserved" "10.0.0.10"
          (Bgp_addr.Ipv4.to_string at.A.next_hop)
      | None -> Alcotest.fail "expected announcements")
    o.Rib_manager.announcements

let test_reflection_nonclient_to_clients_only () =
  let t = Rib_manager.create ~local_asn ~router_id () in
  Rib_manager.add_peer t ibgp_a (* non-client source *);
  Rib_manager.add_peer t ibgp_b (* non-client *);
  Rib_manager.add_peer ~rr_client:true t ibgp_c (* client *);
  let o =
    Rib_manager.announce t ~from:ibgp_a (pfx "203.0.113.0/24")
      (attrs ~nh:"10.0.0.10" [ 64999 ])
  in
  let dests = List.map (fun a -> a.Rib_manager.dest.Peer.id) o.Rib_manager.announcements in
  Alcotest.(check (list int)) "only the client hears it" [ 12 ] dests

let test_reflection_loop_rejected () =
  let t = Rib_manager.create ~local_asn ~router_id () in
  Rib_manager.add_peer ~rr_client:true t ibgp_a;
  (* our own cluster id (defaults to router id) in the CLUSTER_LIST *)
  let looped =
    A.make ~cluster_list:[ router_id ] ~originator_id:(ip "10.0.0.10")
      ~as_path:Bgp_route.As_path.empty ~next_hop:(ip "10.0.0.10") ()
  in
  let o = Rib_manager.announce t ~from:ibgp_a (pfx "203.0.113.0/24") looped in
  Alcotest.(check bool) "rejected as loop" true (o.Rib_manager.adj_in_change = `Loop);
  Alcotest.(check int) "nothing selected" 0 (Loc_rib.size (Rib_manager.loc_rib t));
  (* our own router id as ORIGINATOR_ID is equally fatal *)
  let self_originated =
    A.make ~originator_id:router_id ~as_path:Bgp_route.As_path.empty
      ~next_hop:(ip "10.0.0.10") ()
  in
  let o2 = Rib_manager.announce t ~from:ibgp_a (pfx "198.51.100.0/24") self_originated in
  Alcotest.(check bool) "self-originated rejected" true
    (o2.Rib_manager.adj_in_change = `Loop)

let test_ebgp_learned_goes_to_ibgp () =
  (* EBGP routes flow to IBGP peers without reflection config. *)
  let t = Rib_manager.create ~local_asn ~router_id () in
  Rib_manager.add_peer t peer1;
  Rib_manager.add_peer t ibgp_a;
  let o =
    Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
      (attrs ~nh:"192.0.2.1" [ 65001 ])
  in
  let to_ibgp =
    List.filter (fun a -> a.Rib_manager.dest.Peer.id = 10) o.Rib_manager.announcements
  in
  match to_ibgp with
  | [ { Rib_manager.ann_attrs = Some at; _ } ] ->
    let at = A.Interned.value at in
    (* no AS prepend, no next-hop-self on the IBGP leg *)
    Alcotest.(check int) "path unchanged" 1 (As_path.length at.A.as_path);
    Alcotest.(check string) "next hop unchanged" "192.0.2.1"
      (Bgp_addr.Ipv4.to_string at.A.next_hop)
  | _ -> Alcotest.fail "ibgp peer should hear the ebgp route"

(* ------------------------------------------------------------------ *)
(* Route aggregation                                                   *)
(* ------------------------------------------------------------------ *)

let fresh_with_aggregates aggs =
  let t = Rib_manager.create ~aggregates:aggs ~local_asn ~router_id () in
  Rib_manager.add_peer t peer1;
  Rib_manager.add_peer t peer2;
  t

let agg_16 ?(as_set = true) ?(summary_only = false) () =
  { Rib_manager.agg_prefix = pfx "203.0.0.0/16"; agg_as_set = as_set;
    agg_summary_only = summary_only }

let test_aggregate_activation () =
  let t = fresh_with_aggregates [ agg_16 () ] in
  let o1 =
    Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
      (attrs ~nh:"192.0.2.1" [ 65001; 7018 ])
  in
  (* the /24 plus the freshly activated /16 aggregate *)
  let prefixes =
    List.map
      (fun d -> Bgp_addr.Prefix.to_string (Bgp_fib.Fib.delta_prefix d))
      o1.Rib_manager.fib_deltas
    |> List.sort compare
  in
  Alcotest.(check (list string)) "fib deltas"
    [ "203.0.0.0/16"; "203.0.113.0/24" ]
    prefixes;
  (match Loc_rib.find (Rib_manager.loc_rib t) (pfx "203.0.0.0/16") with
  | None -> Alcotest.fail "aggregate not in loc-rib"
  | Some r ->
    Alcotest.(check bool) "locally originated" true (Peer.is_local (R.from r));
    let a = R.attrs r in
    (* AS_SET carries the contributor ASes *)
    Alcotest.(check bool) "as-set has 65001" true
      (As_path.contains (asn 65001) a.A.as_path);
    Alcotest.(check bool) "as-set has 7018" true
      (As_path.contains (asn 7018) a.A.as_path);
    Alcotest.(check bool) "aggregator attribute" true (a.A.aggregator <> None));
  (* the aggregate is advertised to peer2 alongside the specific *)
  Alcotest.(check int) "peer2 hears both" 2 (Rib_manager.adj_out_size t peer2)

let test_aggregate_deactivation () =
  let t = fresh_with_aggregates [ agg_16 () ] in
  ignore
    (Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.1" [ 65001 ]));
  ignore
    (Rib_manager.announce t ~from:peer1 (pfx "203.0.42.0/24")
       (attrs ~nh:"192.0.2.1" [ 65001 ]));
  Alcotest.(check int) "loc has 3" 3 (Loc_rib.size (Rib_manager.loc_rib t));
  (* withdrawing one contributor keeps the aggregate *)
  ignore (Rib_manager.withdraw t ~from:peer1 (pfx "203.0.42.0/24"));
  Alcotest.(check bool) "aggregate survives" true
    (Loc_rib.find (Rib_manager.loc_rib t) (pfx "203.0.0.0/16") <> None);
  (* withdrawing the last one deactivates it *)
  let o = Rib_manager.withdraw t ~from:peer1 (pfx "203.0.113.0/24") in
  Alcotest.(check int) "loc empty" 0 (Loc_rib.size (Rib_manager.loc_rib t));
  let withdrawn =
    List.filter_map
      (function
        | Bgp_fib.Fib.Withdraw p -> Some (Bgp_addr.Prefix.to_string p)
        | _ -> None)
      o.Rib_manager.fib_deltas
    |> List.sort compare
  in
  Alcotest.(check (list string)) "both withdrawn from fib"
    [ "203.0.0.0/16"; "203.0.113.0/24" ]
    withdrawn

let test_aggregate_atomic_flag () =
  let t = fresh_with_aggregates [ agg_16 ~as_set:false () ] in
  ignore
    (Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.1" [ 65001; 7018 ]));
  match Loc_rib.find (Rib_manager.loc_rib t) (pfx "203.0.0.0/16") with
  | None -> Alcotest.fail "aggregate missing"
  | Some r ->
    let a = R.attrs r in
    Alcotest.(check bool) "atomic set" true a.A.atomic_aggregate;
    Alcotest.(check int) "empty path" 0 (As_path.length a.A.as_path)

let test_aggregate_summary_only () =
  let t = fresh_with_aggregates [ agg_16 ~summary_only:true () ] in
  let o =
    Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
      (attrs ~nh:"192.0.2.1" [ 65001 ])
  in
  (* only the aggregate is exported; the specific is suppressed *)
  Alcotest.(check int) "peer2 hears only the summary" 1
    (Rib_manager.adj_out_size t peer2);
  let announced_prefixes =
    List.filter_map
      (fun a ->
        match a.Rib_manager.ann_attrs with
        | Some _ -> Some (Bgp_addr.Prefix.to_string a.Rib_manager.ann_prefix)
        | None -> None)
      o.Rib_manager.announcements
  in
  Alcotest.(check bool) "summary announced" true
    (List.mem "203.0.0.0/16" announced_prefixes);
  (* deactivation unsuppresses: nothing left to export here, but the
     adj-out must drop the aggregate *)
  ignore (Rib_manager.withdraw t ~from:peer1 (pfx "203.0.113.0/24"));
  Alcotest.(check int) "adj-out empty" 0 (Rib_manager.adj_out_size t peer2)

let test_aggregate_fib_covers_traffic () =
  (* End state: an address under a withdrawn specific still matches the
     aggregate while other specifics remain. *)
  let t = fresh_with_aggregates [ agg_16 () ] in
  let fib = Bgp_fib.Fib.create () in
  let replay o = ignore (Bgp_fib.Fib.apply_all fib o.Rib_manager.fib_deltas) in
  replay
    (Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.1" [ 65001 ]));
  replay
    (Rib_manager.announce t ~from:peer1 (pfx "203.0.42.0/24")
       (attrs ~nh:"192.0.2.1" [ 65001 ]));
  replay (Rib_manager.withdraw t ~from:peer1 (pfx "203.0.42.0/24"));
  match Bgp_fib.Fib.lookup fib (ip "203.0.42.9") with
  | Some (p, _) ->
    Alcotest.(check string) "falls back to aggregate" "203.0.0.0/16"
      (Bgp_addr.Prefix.to_string p)
  | None -> Alcotest.fail "aggregate should cover"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* The fixed EBGP peer set every property draws from. *)
let prop_peer i =
  Peer.make ~id:i
    ~asn:(asn (65001 + i))
    ~router_id:(Bgp_addr.Ipv4.of_octets 192 0 2 (i + 1))
    ~addr:(Bgp_addr.Ipv4.of_octets 192 0 2 (i + 1))

let gen_peer = QCheck2.Gen.(map prop_peer (int_range 0 4))

let gen_candidate =
  QCheck2.Gen.(
    let* peer = gen_peer in
    let* lp = option (int_range 0 300) in
    let* med = option (int_range 0 100) in
    let* plen = int_range 1 5 in
    let* path = list_size (return plen) (int_range 1 65535) in
    let* origin = oneofl [ A.Igp; A.Egp; A.Incomplete ] in
    return
      (route ~prefix:"10.0.0.0/8" ~from:peer ~origin ?med ?local_pref:lp
         ~nh:(Bgp_addr.Ipv4.to_string peer.Peer.addr)
         path))

(* One route per peer, as in real adj-ins. *)
let dedup_by_peer cands =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun r ->
      let id = (R.from r).Peer.id in
      if Hashtbl.mem seen id then false
      else begin
        Hashtbl.add seen id ();
        true
      end)
    cands

let peer_order a b = Peer.compare (R.from a) (R.from b)

(* [Decision.select] itself is a plain left fold with a documented
   stable-order precondition; arrival-order independence is now the
   manager's property (its candidate iteration has a fixed order), so
   that is where we assert it: any arrival interleaving of the same
   per-peer routes must select the same Loc-RIB entry. *)
let prop_manager_arrival_order_invariant =
  QCheck2.Test.make ~name:"manager selection arrival-order invariant"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 6) gen_candidate)
    (fun cands ->
      let cands = dedup_by_peer cands in
      let run order =
        let t = Rib_manager.create ~local_asn ~router_id () in
        for i = 0 to 4 do
          Rib_manager.add_peer t (prop_peer i)
        done;
        List.iter
          (fun r ->
            ignore
              (Rib_manager.announce t ~from:(R.from r) (R.prefix r) (R.attrs r)))
          order;
        Loc_rib.fingerprint (Rib_manager.loc_rib t)
      in
      String.equal (run cands) (run (List.rev cands)))

let prop_select_returns_maximal =
  QCheck2.Test.make ~name:"select's winner beats or ties every candidate"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 6) gen_candidate)
    (fun cands ->
      (* Sorted to select's stable-peer-order precondition, as the
         manager presents them. *)
      let cands = List.sort peer_order (dedup_by_peer cands) in
      match Decision.select ~local_asn cands with
      | None -> cands = []
      | Some best ->
        List.for_all
          (fun r ->
            R.equal r best || fst (Decision.compare_routes ~local_asn r best) <= 0)
          cands)

(* Reference implementation of the pre-straight-line [compare_routes]
   (the rule/closure list it replaced), kept here verbatim so qcheck
   can assert the rewrite changed allocation, not answers. *)
let reference_compare_routes ~local_asn a b =
  let pa = R.pref a and pb = R.pref b in
  let steps =
    [ ( Decision.Local_origin,
        fun () ->
          Bool.compare (Peer.is_local (R.from a)) (Peer.is_local (R.from b)) );
      ( Decision.Local_pref,
        fun () -> Int.compare pa.A.pr_local_pref pb.A.pr_local_pref );
      (Decision.Path_length, fun () -> Int.compare pb.A.pr_path_len pa.A.pr_path_len);
      (Decision.Origin, fun () -> Int.compare pb.A.pr_origin pa.A.pr_origin);
      ( Decision.Med,
        fun () ->
          match pa.A.pr_first_hop, pb.A.pr_first_hop with
          | Some na, Some nb when Asn.equal na nb ->
            Int.compare pb.A.pr_med pa.A.pr_med
          | _ -> 0 );
      ( Decision.Ebgp_over_ibgp,
        fun () ->
          let is_ebgp r =
            (not (Peer.is_local (R.from r)))
            && not (Asn.equal (R.from r).Peer.asn local_asn)
          in
          Bool.compare (is_ebgp a) (is_ebgp b) );
      ( Decision.Router_id,
        fun () ->
          Bgp_addr.Ipv4.compare (R.from b).Peer.router_id
            (R.from a).Peer.router_id );
      ( Decision.Peer_address,
        fun () ->
          Bgp_addr.Ipv4.compare (R.from b).Peer.addr (R.from a).Peer.addr )
    ]
  in
  let rec go = function
    | [] -> (0, Decision.Identical)
    | (rule, step) :: rest ->
      let c = step () in
      if c <> 0 then (c, rule) else go rest
  in
  go steps

let prop_compare_routes_matches_reference =
  QCheck2.Test.make
    ~name:"straight-line compare_routes agrees with rule-list reference"
    ~count:1000
    QCheck2.Gen.(pair gen_candidate gen_candidate)
    (fun (a, b) ->
      let c, rule = Decision.compare_routes ~local_asn a b in
      let c', rule' = reference_compare_routes ~local_asn a b in
      c = c' && rule = rule')

(* Differential check of the best-vs-challenger fast path: the same
   random announce/withdraw/replace sequence driven through an
   incremental manager and a full-rescan one must leave byte-identical
   Loc-RIB fingerprints after every single operation.  First hops come
   from a two-element set so MED-incomparability (same-first-hop MED
   comparisons mixed with incomparable pairs) is exercised often. *)
let gen_rib_op =
  QCheck2.Gen.(
    let* peer_idx = int_range 0 4 in
    let* pfx_idx = int_range 0 2 in
    let* kind = int_range 0 3 in
    if kind = 0 then return (peer_idx, pfx_idx, None)
    else
      let* first_hop = oneofl [ 7018; 701 ] in
      let* med = option (int_range 0 3) in
      let* lp = option (int_range 90 110) in
      let* tail = list_size (int_range 0 3) (int_range 1 60000) in
      let* origin = oneofl [ A.Igp; A.Egp; A.Incomplete ] in
      return (peer_idx, pfx_idx, Some (first_hop, med, lp, tail, origin)))

let prop_incremental_matches_full =
  QCheck2.Test.make ~name:"incremental selection matches full re-scan"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 40) gen_rib_op)
    (fun ops ->
      let prefixes =
        [| pfx "10.0.0.0/8"; pfx "10.1.0.0/16"; pfx "203.0.113.0/24" |]
      in
      let mk incremental =
        let t = Rib_manager.create ~incremental ~local_asn ~router_id () in
        for i = 0 to 4 do
          Rib_manager.add_peer t (prop_peer i)
        done;
        t
      in
      let fast = mk true and full = mk false in
      List.for_all
        (fun (pi, xi, op) ->
          let from = prop_peer pi in
          let prefix = prefixes.(xi) in
          (match op with
          | Some (fh, med, lp, tail, origin) ->
            let a =
              attrs ~origin ?med ?local_pref:lp
                ~nh:(Bgp_addr.Ipv4.to_string from.Peer.addr)
                (fh :: tail)
            in
            ignore (Rib_manager.announce fast ~from prefix a);
            ignore (Rib_manager.announce full ~from prefix a)
          | None ->
            ignore (Rib_manager.withdraw fast ~from prefix);
            ignore (Rib_manager.withdraw full ~from prefix));
          String.equal
            (Loc_rib.fingerprint (Rib_manager.loc_rib fast))
            (Loc_rib.fingerprint (Rib_manager.loc_rib full)))
        ops)

(* And the fast path must actually fire: a losing challenger from a
   later peer than the incumbent is exactly its trigger condition. *)
let test_decision_fastpath_counter () =
  let t = Rib_manager.create ~local_asn ~router_id () in
  Rib_manager.add_peer t peer1;
  Rib_manager.add_peer t peer2;
  ignore
    (Rib_manager.announce t ~from:peer1 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.1" [ 65001 ]));
  ignore
    (Rib_manager.announce t ~from:peer2 (pfx "203.0.113.0/24")
       (attrs ~nh:"192.0.2.2" [ 65002; 9; 9 ]));
  let s = Rib_manager.stats t in
  Alcotest.(check int) "fast path fired once" 1 s.Rib_manager.decision_fastpath;
  Alcotest.(check int) "both updates processed" 2 s.Rib_manager.updates_processed;
  (* the incumbent must still be the short-path route *)
  match Loc_rib.find (Rib_manager.loc_rib t) (pfx "203.0.113.0/24") with
  | Some r -> Alcotest.(check int) "peer1 still best" 0 (R.from r).Peer.id
  | None -> Alcotest.fail "best missing"

(* ------------------------------------------------------------------ *)
(* RFC 2439 route flap damping                                         *)
(* ------------------------------------------------------------------ *)

let damp_attrs = A.Interned.intern (attrs ~nh:"192.0.2.1" [ 65001; 7 ])
let damp_attrs' = A.Interned.intern (attrs ~nh:"192.0.2.1" [ 65001; 8; 9 ])
let dpfx = pfx "203.0.113.0/24"

let test_damping_first_announce_free () =
  let d = Damping.create Damping.test_config in
  Alcotest.(check bool) "first announce passes" true
    (Damping.on_announce d ~now:0. ~peer:peer1 ~prefix:dpfx ~attrs:damp_attrs
    = Damping.Pass);
  Alcotest.(check (float 0.)) "no state, no penalty" 0.
    (Damping.penalty d ~now:0. ~peer:peer1 ~prefix:dpfx)

let test_damping_suppress_and_reuse () =
  let c = Damping.test_config in
  let d = Damping.create c in
  (* Two quick withdraw/announce cycles cross the suppress threshold. *)
  Damping.note_withdraw d ~now:0. ~peer:peer1 ~prefix:dpfx;
  Alcotest.(check bool) "one withdrawal not yet suppressed" true
    (Damping.suppressed_count d = 0);
  Alcotest.(check bool) "re-announce passes" true
    (Damping.on_announce d ~now:0.1 ~peer:peer1 ~prefix:dpfx ~attrs:damp_attrs
    = Damping.Pass);
  Damping.note_withdraw d ~now:0.2 ~peer:peer1 ~prefix:dpfx;
  Alcotest.(check int) "second withdrawal suppresses" 1
    (Damping.suppressed_count d);
  Alcotest.(check bool) "announce while suppressed withheld" true
    (Damping.on_announce d ~now:0.3 ~peer:peer1 ~prefix:dpfx ~attrs:damp_attrs
    = Damping.Suppress);
  (* The reuse instant: decay from ~2000 to 750 with a 2 s half-life. *)
  (match Damping.next_reuse_at d with
  | None -> Alcotest.fail "no reuse timer while suppressed"
  | Some at ->
    Alcotest.(check bool) "reuse in the future" true (at > 0.3);
    Alcotest.(check bool) "reuse within max_suppress" true
      (at <= 0.3 +. c.Damping.max_suppress);
    Alcotest.(check int) "not reusable before the instant" 0
      (List.length (Damping.take_reusable d ~now:(at -. 0.5)));
    (match Damping.take_reusable d ~now:(at +. 0.01) with
    | [ (p, x, a) ] ->
      Alcotest.(check int) "reused for the right peer" peer1.Peer.id p.Peer.id;
      Alcotest.(check bool) "right prefix" true (Bgp_addr.Prefix.equal x dpfx);
      Alcotest.(check bool) "latest attrs released" true
        (A.Interned.equal a damp_attrs)
    | l -> Alcotest.failf "expected one reusable route, got %d" (List.length l)));
  Alcotest.(check int) "nothing suppressed after reuse" 0
    (Damping.suppressed_count d);
  Alcotest.(check int) "books exactly one reuse" 1 (Damping.reuses d)

let test_damping_withdrawn_route_not_reinjected () =
  let d = Damping.create Damping.test_config in
  (* Suppress, then withdraw while suppressed: nothing to re-inject. *)
  Damping.note_withdraw d ~now:0. ~peer:peer1 ~prefix:dpfx;
  ignore (Damping.on_announce d ~now:0.1 ~peer:peer1 ~prefix:dpfx ~attrs:damp_attrs);
  Damping.note_withdraw d ~now:0.2 ~peer:peer1 ~prefix:dpfx;
  Alcotest.(check int) "suppressed" 1 (Damping.suppressed_count d);
  Alcotest.(check (list reject)) "withdrawn route released empty" []
    (List.map (fun _ -> ()) (Damping.take_reusable d ~now:100.));
  Alcotest.(check int) "released nonetheless" 0 (Damping.suppressed_count d)

let test_damping_ceiling_bounds_suppression () =
  let c = Damping.test_config in
  let d = Damping.create c in
  (* Hammer the route far past the ceiling; suppression must still end
     within max_suppress of the last flap. *)
  for i = 0 to 49 do
    let now = 0.05 *. float_of_int i in
    Damping.note_withdraw d ~now ~peer:peer1 ~prefix:dpfx;
    ignore
      (Damping.on_announce d ~now:(now +. 0.02) ~peer:peer1 ~prefix:dpfx
         ~attrs:(if i mod 2 = 0 then damp_attrs else damp_attrs'))
  done;
  let last = 0.05 *. 49. +. 0.02 in
  Alcotest.(check bool) "penalty clamped to the ceiling" true
    (Damping.penalty d ~now:last ~peer:peer1 ~prefix:dpfx
    <= Damping.ceiling c +. 1e-6);
  match Damping.next_reuse_at d with
  | None -> Alcotest.fail "no reuse timer"
  | Some at ->
    Alcotest.(check bool) "reuse within max_suppress of last flap" true
      (at -. last <= c.Damping.max_suppress +. 1e-6)

let prop_damping_decay_halves =
  QCheck2.Test.make ~name:"penalty halves every half-life" ~count:200
    QCheck2.Gen.(pair (float_range 0.5 100.) (int_range 1 5))
    (fun (hl, k) ->
      let c = { Damping.test_config with Damping.half_life = hl } in
      let d = Damping.create c in
      Damping.note_withdraw d ~now:0. ~peer:peer1 ~prefix:dpfx;
      let p0 = Damping.penalty d ~now:0. ~peer:peer1 ~prefix:dpfx in
      let pk =
        Damping.penalty d ~now:(hl *. float_of_int k) ~peer:peer1 ~prefix:dpfx
      in
      Float.abs (pk -. (p0 /. (2. ** float_of_int k))) < 1e-6 *. p0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "bgp_rib"
    [ ( "decision",
        [ Alcotest.test_case "local pref" `Quick test_decision_local_pref;
          Alcotest.test_case "default local pref" `Quick test_decision_default_local_pref;
          Alcotest.test_case "path length" `Quick test_decision_path_length;
          Alcotest.test_case "origin" `Quick test_decision_origin;
          Alcotest.test_case "med same neighbor" `Quick test_decision_med_same_neighbor;
          Alcotest.test_case "med different neighbor" `Quick
            test_decision_med_different_neighbor;
          Alcotest.test_case "missing med best" `Quick test_decision_missing_med_is_best;
          Alcotest.test_case "ebgp over ibgp" `Quick test_decision_ebgp_over_ibgp;
          Alcotest.test_case "local wins" `Quick test_decision_local_wins;
          Alcotest.test_case "router id tiebreak" `Quick test_decision_router_id_tiebreak;
          Alcotest.test_case "select permutations" `Quick test_select_permutation_invariant
        ] );
      ( "rib_manager",
        [ Alcotest.test_case "first announcement" `Quick test_first_announcement;
          Alcotest.test_case "duplicate is no-op" `Quick test_duplicate_announcement_noop;
          Alcotest.test_case "longer path: no FIB change" `Quick
            test_longer_path_no_fib_change;
          Alcotest.test_case "shorter path: FIB replace" `Quick test_shorter_path_replaces;
          Alcotest.test_case "withdraw falls back" `Quick test_withdraw_falls_back;
          Alcotest.test_case "AS loop detection" `Quick test_loop_detection;
          Alcotest.test_case "local injection wins" `Quick test_local_injection_wins;
          Alcotest.test_case "export_full" `Quick test_export_full;
          Alcotest.test_case "refresh resends" `Quick test_refresh_resends;
          Alcotest.test_case "peer down" `Quick test_peer_down;
          Alcotest.test_case "import policy filters" `Quick test_import_policy_filters;
          Alcotest.test_case "import policy local-pref" `Quick
            test_import_policy_local_pref_overrides;
          Alcotest.test_case "no-export community" `Quick test_no_export_community;
          Alcotest.test_case "stats accumulate" `Quick test_stats_accumulate;
          Alcotest.test_case "decision fast path fires" `Quick
            test_decision_fastpath_counter
        ] );
      ( "route reflection",
        [ Alcotest.test_case "ibgp no re-advertisement" `Quick
            test_ibgp_no_readvertisement;
          Alcotest.test_case "client reflects to all" `Quick
            test_reflection_client_to_all;
          Alcotest.test_case "non-client reflects to clients only" `Quick
            test_reflection_nonclient_to_clients_only;
          Alcotest.test_case "reflection loop rejected" `Quick
            test_reflection_loop_rejected;
          Alcotest.test_case "ebgp route reaches ibgp" `Quick
            test_ebgp_learned_goes_to_ibgp
        ] );
      ( "aggregation",
        [ Alcotest.test_case "activation with AS_SET" `Quick test_aggregate_activation;
          Alcotest.test_case "deactivation" `Quick test_aggregate_deactivation;
          Alcotest.test_case "atomic aggregate flag" `Quick test_aggregate_atomic_flag;
          Alcotest.test_case "summary-only suppression" `Quick
            test_aggregate_summary_only;
          Alcotest.test_case "fib covers withdrawn specific" `Quick
            test_aggregate_fib_covers_traffic
        ] );
      ( "damping",
        [ Alcotest.test_case "first announce free" `Quick
            test_damping_first_announce_free;
          Alcotest.test_case "suppress and reuse" `Quick
            test_damping_suppress_and_reuse;
          Alcotest.test_case "withdrawn not re-injected" `Quick
            test_damping_withdrawn_route_not_reinjected;
          Alcotest.test_case "ceiling bounds suppression" `Quick
            test_damping_ceiling_bounds_suppression
        ] );
      qsuite "properties"
        [ prop_manager_arrival_order_invariant; prop_select_returns_maximal;
          prop_compare_routes_matches_reference; prop_incremental_matches_full;
          prop_damping_decay_halves ]
    ]
