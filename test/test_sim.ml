open Bgp_sim

let feq ?(eps = 1e-6) name expect got =
  if Float.abs (expect -. got) > eps then
    Alcotest.failf "%s: expected %.9f got %.9f" name expect got

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter
    (fun (t, s) -> Heap.push h ~time:t ~seq:s (t, s))
    [ (3.0, 1); (1.0, 2); (2.0, 3); (1.0, 1); (0.5, 9) ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, _, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (pair (float 0.0) int)))
    "sorted by (time, seq)"
    [ (0.5, 9); (1.0, 1); (1.0, 2); (2.0, 3); (3.0, 1) ]
    (List.rev !order);
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_stress () =
  let h = Heap.create () in
  let rng = Rng.create 1 in
  for i = 0 to 9999 do
    Heap.push h ~time:(Rng.float rng 100.0) ~seq:i ()
  done;
  Alcotest.(check int) "size" 10000 (Heap.size h);
  let last = ref neg_infinity in
  let ok = ref true in
  let rec drain () =
    match Heap.pop h with
    | Some (t, _, ()) ->
      if t < !last then ok := false;
      last := t;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check bool) "monotone" true !ok

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_order_and_time () =
  let e = Engine.create () in
  let log = ref [] in
  let note s () = log := (s, Engine.now e) :: !log in
  ignore (Engine.schedule e ~delay:2.0 (note "b"));
  ignore (Engine.schedule e ~delay:1.0 (note "a"));
  ignore (Engine.schedule e ~delay:2.0 (note "c"));
  Engine.run e;
  Alcotest.(check (list (pair string (float 1e-9))))
    "order and times"
    [ ("a", 1.0); ("b", 2.0); ("c", 2.0) ]
    (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check bool) "cancelled" true (Engine.cancelled h)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Engine.schedule e ~delay:1.0 tick)
  in
  ignore (Engine.schedule e ~delay:1.0 tick);
  Engine.run ~until:5.5 e;
  Alcotest.(check int) "five ticks" 5 !count;
  feq "clock at bound" 5.5 (Engine.now e);
  Engine.run ~until:7.0 e;
  Alcotest.(check int) "two more" 7 !count

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:0.0 (fun () -> log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log)

let test_engine_event_limit () =
  let e = Engine.create () in
  Engine.set_event_limit e 10;
  let rec forever () = ignore (Engine.schedule e ~delay:1.0 forever) in
  ignore (Engine.schedule e ~delay:1.0 forever);
  Alcotest.check_raises "limit" Engine.Too_many_events (fun () -> Engine.run e)

let test_engine_past_event () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:5.0 (fun () -> ()));
  Engine.run e;
  let t = ref 0.0 in
  ignore (Engine.schedule_at e ~time:1.0 (fun () -> t := Engine.now e));
  Engine.run e;
  feq "clamped to now" 5.0 !t

let test_engine_pending_exact_and_compaction () =
  let e = Engine.create () in
  let n = 100 in
  let fired = ref [] in
  let handles =
    Array.init n (fun i ->
        Engine.schedule_at e
          ~time:(float_of_int (i + 1))
          (fun () -> fired := i :: !fired))
  in
  Alcotest.(check int) "all pending" n (Engine.pending e);
  (* Cancel 60 of 100, scattered — enough dead entries to trigger the
     lazy heap compaction; [pending] must stay exact throughout. *)
  let cancelled = ref 0 in
  Array.iteri
    (fun i h ->
      if i mod 10 < 6 then begin
        Engine.cancel h;
        incr cancelled
      end)
    handles;
  Alcotest.(check int) "exact after cancels" (n - !cancelled)
    (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "zero after run" 0 (Engine.pending e);
  let expect = List.filter (fun i -> i mod 10 >= 6) (List.init n Fun.id) in
  Alcotest.(check (list int)) "survivors fire in time order" expect
    (List.rev !fired)

let test_engine_run_before () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule_at e ~time:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule_at e ~time:2.0 (fun () -> log := 2 :: !log));
  Engine.run_before e ~until:2.0;
  Alcotest.(check (list int)) "strictly below the bound" [ 1 ] (List.rev !log);
  feq "clock at bound" 2.0 (Engine.now e);
  Alcotest.(check int) "boundary event still pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check (list int)) "boundary fires on the next run" [ 1; 2 ]
    (List.rev !log)

(* ------------------------------------------------------------------ *)
(* Pengine                                                             *)
(* ------------------------------------------------------------------ *)

let test_pengine_parts1_matches_engine () =
  let schedule_all e log =
    List.iter
      (fun (t, s) ->
        ignore
          (Engine.schedule_at e ~time:t (fun () ->
               log := (s, Engine.now e) :: !log)))
      [ (1.0, "a"); (0.5, "b"); (2.0, "c"); (1.0, "d") ]
  in
  let plain =
    let e = Engine.create () in
    let log = ref [] in
    schedule_all e log;
    Engine.run ~until:3.0 e;
    List.rev !log
  in
  let partitioned =
    let pe = Pengine.create () in
    let log = ref [] in
    schedule_all (Pengine.part pe 0) log;
    Pengine.run_until pe 3.0;
    List.rev !log
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "parts=1 is the plain engine" plain partitioned;
  Alcotest.(check int) "dispatched" 4
    (let pe = Pengine.create () in
     let log = ref [] in
     schedule_all (Pengine.part pe 0) log;
     Pengine.run_until pe 3.0;
     Pengine.dispatched pe 0)

(* Two partitions exchanging posts across the window barrier: the
   per-partition logs (written only by the partition's own domain,
   read after run_until's pool join) must be a pure function of the
   model — identical across runs and equal to the hand-computed
   schedule. *)
let test_pengine_two_partition_windows () =
  let run () =
    let pe = Pengine.create ~parts:2 () in
    Pengine.register_cross_latency pe 0.5;
    let log0 = ref [] and log1 = ref [] in
    let rec ping src dst msg () =
      let log = if src = 0 then log0 else log1 in
      let now = Engine.now (Pengine.part pe src) in
      log := (msg, now) :: !log;
      if now < 3.0 then
        Pengine.post pe ~src ~dst ~time:(now +. 0.5) (ping dst src (msg ^ "."))
    in
    ignore (Engine.schedule_at (Pengine.part pe 0) ~time:0.25 (ping 0 1 "p"));
    ignore
      (Engine.schedule_at (Pengine.part pe 1) ~time:0.4 (fun () ->
           log1 := ("local", Engine.now (Pengine.part pe 1)) :: !log1));
    Pengine.run_until pe 4.0;
    (List.rev !log0, List.rev !log1)
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool) "two runs identical" true (a = b);
  let l0, l1 = a in
  Alcotest.(check (list (pair string (float 1e-9))))
    "partition 0 schedule"
    [ ("p", 0.25); ("p..", 1.25); ("p....", 2.25); ("p......", 3.25) ]
    l0;
  Alcotest.(check (list (pair string (float 1e-9))))
    "partition 1 schedule"
    [ ("local", 0.4); ("p.", 0.75); ("p...", 1.75); ("p.....", 2.75) ]
    l1

let test_pengine_partition_failed () =
  let pe = Pengine.create ~parts:2 () in
  Pengine.register_cross_latency pe 1.0;
  ignore
    (Engine.schedule_at (Pengine.part pe 1) ~time:0.5 (fun () ->
         failwith "boom"));
  (match Pengine.run_until pe 2.0 with
  | () -> Alcotest.fail "expected Partition_failed"
  | exception Pengine.Partition_failed (1, Failure msg) when msg = "boom" -> ()
  | exception Pengine.Partition_failed (p, e) ->
    Alcotest.failf "wrong payload: partition %d, %s" p (Printexc.to_string e));
  (* The engine is still parked consistently: a fresh run can proceed. *)
  Pengine.run_until pe 3.0;
  feq "clock advanced" 3.0 (Pengine.now pe)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 43 in
  let diff = ref false in
  for _ = 1 to 20 do
    if Rng.int (Rng.create 42) 1000000 <> Rng.int c 1000000 then diff := true
  done;
  Alcotest.(check bool) "different seed differs" true !diff

let test_rng_ranges () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of range: %d" v;
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of range: %f" f;
    let e = Rng.exponential r ~mean:3.0 in
    if e < 0.0 then Alcotest.fail "negative exponential"
  done

let test_rng_exponential_mean () =
  let r = Rng.create 11 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 4.0) > 0.2 then
    Alcotest.failf "exponential mean drifted: %f" mean

let test_rng_split_independent () =
  let r = Rng.create 5 in
  let s = Rng.split r in
  (* Streams must not be identical. *)
  let same = ref true in
  for _ = 1 to 10 do
    if Rng.int r 1000000 <> Rng.int s 1000000 then same := false
  done;
  Alcotest.(check bool) "split differs" false !same

(* ------------------------------------------------------------------ *)
(* Sched                                                               *)
(* ------------------------------------------------------------------ *)

let with_sched ~pool f =
  let e = Engine.create () in
  let s = Sched.create (Engine.clock e) ~hz:1000.0 ~pool in
  f e s

let test_sched_single_job () =
  with_sched ~pool:1.0 (fun e s ->
      let p = Sched.add_proc s "p" in
      let t_done = ref 0.0 in
      Sched.submit s p ~cycles:500.0 (fun () -> t_done := Engine.now e);
      Engine.run e;
      feq "cycles/hz" 0.5 !t_done)

let test_sched_sharing_one_core () =
  with_sched ~pool:1.0 (fun e s ->
      let p1 = Sched.add_proc s "p1" and p2 = Sched.add_proc s "p2" in
      let d1 = ref 0.0 and d2 = ref 0.0 in
      Sched.submit s p1 ~cycles:500.0 (fun () -> d1 := Engine.now e);
      Sched.submit s p2 ~cycles:500.0 (fun () -> d2 := Engine.now e);
      Engine.run e;
      (* Each runs at 0.5 core: both finish at 1.0s. *)
      feq "p1" 1.0 !d1;
      feq "p2" 1.0 !d2)

let test_sched_two_cores_pipeline () =
  with_sched ~pool:2.0 (fun e s ->
      let p1 = Sched.add_proc s "p1" and p2 = Sched.add_proc s "p2" in
      let d1 = ref 0.0 and d2 = ref 0.0 in
      Sched.submit s p1 ~cycles:500.0 (fun () -> d1 := Engine.now e);
      Sched.submit s p2 ~cycles:500.0 (fun () -> d2 := Engine.now e);
      Engine.run e;
      (* Both at full core speed. *)
      feq "p1" 0.5 !d1;
      feq "p2" 0.5 !d2)

let test_sched_proc_capped_at_one_core () =
  with_sched ~pool:2.0 (fun e s ->
      let p = Sched.add_proc s "p" in
      let t_done = ref 0.0 in
      Sched.submit s p ~cycles:1000.0 (fun () -> t_done := Engine.now e);
      Engine.run e;
      (* A single-threaded process cannot use the second core. *)
      feq "capped" 1.0 !t_done)

let test_sched_fifo_within_proc () =
  with_sched ~pool:1.0 (fun e s ->
      let p = Sched.add_proc s "p" in
      let log = ref [] in
      Sched.submit s p ~cycles:100.0 (fun () -> log := ("a", Engine.now e) :: !log);
      Sched.submit s p ~cycles:100.0 (fun () -> log := ("b", Engine.now e) :: !log);
      Alcotest.(check int) "queued" 2 (Sched.queue_length s p);
      Engine.run e;
      match List.rev !log with
      | [ ("a", ta); ("b", tb) ] ->
        feq "a" 0.1 ta;
        feq "b" 0.2 tb
      | _ -> Alcotest.fail "wrong order")

let test_sched_interrupt_steals () =
  with_sched ~pool:1.0 (fun e s ->
      let p = Sched.add_proc s "p" in
      (* interrupts take 50% of the pool *)
      Sched.set_interrupt_demand s ~cycles_per_sec:500.0;
      let t_done = ref 0.0 in
      Sched.submit s p ~cycles:500.0 (fun () -> t_done := Engine.now e);
      Engine.run ~until:10.0 e;
      feq "half speed" 1.0 !t_done)

let test_sched_interrupt_change_midway () =
  with_sched ~pool:1.0 (fun e s ->
      let p = Sched.add_proc s "p" in
      let t_done = ref 0.0 in
      Sched.submit s p ~cycles:1000.0 (fun () -> t_done := Engine.now e);
      (* After 0.5s at full speed (500 cycles done), interrupts eat 50%:
         the remaining 500 cycles take 1.0s more. *)
      ignore
        (Engine.schedule e ~delay:0.5 (fun () ->
             Sched.set_interrupt_demand s ~cycles_per_sec:500.0));
      Engine.run ~until:10.0 e;
      feq "piecewise" 1.5 !t_done)

let test_sched_forwarding_priority_and_loss () =
  with_sched ~pool:1.0 (fun e s ->
      (* Forwarding wants 95% of the core, weight 8. *)
      Sched.set_forwarding_demand s ~cycles_per_sec:950.0 ();
      feq "alone: fully served" 1.0 (Sched.forwarding_ratio s);
      let p = Sched.add_proc s "p" in
      Sched.submit s p ~cycles:1000.0 (fun () -> ());
      (* With one user proc: forwarding gets 8/9 of the core = 888.9
         cycles/s < demand -> ratio ~0.9356. *)
      feq ~eps:1e-3 "contended ratio" (8.0 /. 9.0 /. 0.95) (Sched.forwarding_ratio s);
      Engine.run ~until:20.0 e;
      (* Queue drained: forwarding fully served again. *)
      feq "recovered" 1.0 (Sched.forwarding_ratio s))

let test_sched_forwarding_moderate_unaffected () =
  with_sched ~pool:1.0 (fun e s ->
      (* Moderate forwarding demand (35%) is fully served even while a
         user process runs, because weight 8 >> 1. *)
      Sched.set_forwarding_demand s ~cycles_per_sec:350.0 ();
      let p = Sched.add_proc s "p" in
      let t_done = ref 0.0 in
      Sched.submit s p ~cycles:650.0 (fun () -> t_done := Engine.now e);
      feq "served" 1.0 (Sched.forwarding_ratio s);
      Engine.run ~until:10.0 e;
      (* User got the remaining 65%. *)
      feq ~eps:1e-3 "user speed" 1.0 !t_done)

let test_sched_accounting () =
  with_sched ~pool:1.0 (fun e s ->
      let p = Sched.add_proc s "p" in
      Sched.set_interrupt_demand s ~cycles_per_sec:200.0;
      Sched.submit s p ~cycles:400.0 (fun () -> ());
      Engine.run ~until:1.0 e;
      (* Force the accounting boundary at t=1.0. *)
      let acc = Sched.take_accounting s in
      feq "elapsed" 1.0 acc.Sched.acc_elapsed;
      feq ~eps:1e-3 "interrupt cycles" 200.0 acc.Sched.acc_interrupt;
      (match acc.Sched.acc_procs with
      | [ ("p", c) ] -> feq ~eps:1e-3 "proc cycles" 400.0 c
      | _ -> Alcotest.fail "proc accounting");
      (* Second window is empty. *)
      Engine.run ~until:2.0 e;
      let acc2 = Sched.take_accounting s in
      (match acc2.Sched.acc_procs with
      | [ ("p", c) ] -> feq ~eps:1e-3 "idle window" 0.0 c
      | _ -> Alcotest.fail "proc accounting 2");
      feq ~eps:1e-3 "interrupts continue" 200.0 acc2.Sched.acc_interrupt)

let test_sched_zero_cycle_job () =
  with_sched ~pool:1.0 (fun e s ->
      let p = Sched.add_proc s "p" in
      let fired = ref false in
      Sched.submit s p ~cycles:0.0 (fun () -> fired := true);
      Engine.run e;
      Alcotest.(check bool) "zero job completes" true !fired)

let test_sched_many_jobs_throughput () =
  with_sched ~pool:1.0 (fun e s ->
      let p = Sched.add_proc s "p" in
      let completed = ref 0 in
      for _ = 1 to 1000 do
        Sched.submit s p ~cycles:10.0 (fun () -> incr completed)
      done;
      Engine.run e;
      Alcotest.(check int) "all done" 1000 !completed;
      (* 10000 cycles at 1000 Hz = 10 s *)
      feq ~eps:1e-3 "total time" 10.0 (Engine.now e))

(* Work conservation: with n busy single-core processes on a pool of
   size m and no background load, total completion time of equal jobs
   is (total cycles) / (hz * min(n, m)). *)
let prop_sched_work_conserving =
  QCheck2.Test.make ~name:"scheduler is work-conserving" ~count:100
    QCheck2.Gen.(
      triple (int_range 1 6) (int_range 1 4) (int_range 1 20))
    (fun (nprocs, pool, kilocycles) ->
      let e = Engine.create () in
      let s = Sched.create (Engine.clock e) ~hz:1000.0 ~pool:(float_of_int pool) in
      let cycles = float_of_int (kilocycles * 1000) in
      let done_count = ref 0 in
      for i = 1 to nprocs do
        let p = Sched.add_proc s (Printf.sprintf "p%d" i) in
        Sched.submit s p ~cycles (fun () -> incr done_count)
      done;
      Engine.run e;
      let expect =
        float_of_int nprocs *. cycles
        /. (1000.0 *. float_of_int (min nprocs pool))
      in
      !done_count = nprocs
      && Float.abs (Engine.now e -. expect) /. expect < 1e-6)

(* FIFO per process: completion order within one process matches
   submission order, regardless of interleaved load elsewhere. *)
let prop_sched_fifo_per_proc =
  QCheck2.Test.make ~name:"jobs complete FIFO within a process" ~count:100
    QCheck2.Gen.(list_size (int_range 1 20) (int_range 1 500))
    (fun jobs ->
      let e = Engine.create () in
      let s = Sched.create (Engine.clock e) ~hz:1000.0 ~pool:1.0 in
      let p = Sched.add_proc s "p" in
      let other = Sched.add_proc s "other" in
      Sched.submit s other ~cycles:5000.0 (fun () -> ());
      let order = ref [] in
      List.iteri
        (fun i c ->
          Sched.submit s p ~cycles:(float_of_int c) (fun () ->
              order := i :: !order))
        jobs;
      Engine.run e;
      List.rev !order = List.init (List.length jobs) Fun.id)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_sampling () =
  let e = Engine.create () in
  let s = Sched.create (Engine.clock e) ~hz:1000.0 ~pool:1.0 in
  let p = Sched.add_proc s "worker" in
  let tr = Trace.start (Engine.clock e) s ~interval:1.0 () in
  (* Busy for the first 2 s at 100%, then idle. *)
  Sched.submit s p ~cycles:2000.0 (fun () -> ());
  Engine.run ~until:4.0 e;
  Trace.stop tr;
  let ss = Trace.samples tr in
  Alcotest.(check int) "four+final samples" 4 (List.length ss);
  (match ss with
  | s1 :: s2 :: s3 :: _ ->
    feq ~eps:0.5 "first second busy" 100.0 (Trace.total_user_percent s1);
    feq ~eps:0.5 "second second busy" 100.0 (Trace.total_user_percent s2);
    feq ~eps:0.5 "third second idle" 0.0 (Trace.total_user_percent s3)
  | _ -> Alcotest.fail "samples");
  let rows = Trace.to_rows tr in
  Alcotest.(check bool) "has worker series" true (List.mem_assoc "worker" rows);
  Alcotest.(check bool) "has interrupts series" true
    (List.mem_assoc "interrupts" rows)

let test_trace_interrupt_series () =
  let e = Engine.create () in
  let s = Sched.create (Engine.clock e) ~hz:1000.0 ~pool:1.0 in
  ignore (Sched.add_proc s "w");
  let tr = Trace.start (Engine.clock e) s ~interval:1.0 () in
  Sched.set_interrupt_demand s ~cycles_per_sec:300.0;
  Engine.run ~until:3.0 e;
  Trace.stop tr;
  List.iter
    (fun sample -> feq ~eps:0.5 "irq 30%" 30.0 sample.Trace.s_interrupt)
    (Trace.samples tr)

let () =
  Alcotest.run "bgp_sim"
    [ ( "heap",
        [ Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "stress" `Quick test_heap_stress
        ] );
      ( "engine",
        [ Alcotest.test_case "order and time" `Quick test_engine_order_and_time;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "event limit" `Quick test_engine_event_limit;
          Alcotest.test_case "past event clamped" `Quick test_engine_past_event;
          Alcotest.test_case "exact pending + compaction" `Quick
            test_engine_pending_exact_and_compaction;
          Alcotest.test_case "run_before half-open bound" `Quick
            test_engine_run_before
        ] );
      ( "pengine",
        [ Alcotest.test_case "parts=1 matches plain engine" `Quick
            test_pengine_parts1_matches_engine;
          Alcotest.test_case "two-partition window determinism" `Quick
            test_pengine_two_partition_windows;
          Alcotest.test_case "partition failure propagates" `Quick
            test_pengine_partition_failed
        ] );
      ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent
        ] );
      ( "sched",
        [ Alcotest.test_case "single job" `Quick test_sched_single_job;
          Alcotest.test_case "sharing one core" `Quick test_sched_sharing_one_core;
          Alcotest.test_case "two cores pipeline" `Quick test_sched_two_cores_pipeline;
          Alcotest.test_case "per-proc core cap" `Quick test_sched_proc_capped_at_one_core;
          Alcotest.test_case "fifo within proc" `Quick test_sched_fifo_within_proc;
          Alcotest.test_case "interrupts steal cpu" `Quick test_sched_interrupt_steals;
          Alcotest.test_case "interrupt change midway" `Quick
            test_sched_interrupt_change_midway;
          Alcotest.test_case "forwarding priority and loss" `Quick
            test_sched_forwarding_priority_and_loss;
          Alcotest.test_case "moderate forwarding unaffected" `Quick
            test_sched_forwarding_moderate_unaffected;
          Alcotest.test_case "accounting" `Quick test_sched_accounting;
          Alcotest.test_case "zero-cycle job" `Quick test_sched_zero_cycle_job;
          Alcotest.test_case "many jobs throughput" `Quick test_sched_many_jobs_throughput
        ] );
      ( "sched-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sched_work_conserving; prop_sched_fifo_per_proc ] );
      ( "trace",
        [ Alcotest.test_case "sampling" `Quick test_trace_sampling;
          Alcotest.test_case "interrupt series" `Quick test_trace_interrupt_series
        ] )
    ]
