(* Tests for the workload construction and table serialization. *)

module Workload = Bgp_speaker.Workload
module Table_io = Bgp_speaker.Table_io
module As_path = Bgp_route.As_path
module A = Bgp_route.Attrs

let asn = Bgp_route.Asn.of_int
let ip = Bgp_addr.Ipv4.of_string_exn
let pfx = Bgp_addr.Prefix.of_string_exn

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_workload_path () =
  let p = Workload.path ~origin_asn:(asn 65001) ~len:4 in
  Alcotest.(check int) "length" 4 (As_path.length p);
  Alcotest.(check (option int)) "starts at speaker" (Some 65001)
    (Option.map Bgp_route.Asn.to_int (As_path.first_hop p));
  let p1 = Workload.path ~origin_asn:(asn 65001) ~len:1 in
  Alcotest.(check int) "singleton" 1 (As_path.length p1);
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Workload.path: length must be >= 1") (fun () ->
      ignore (Workload.path ~origin_asn:(asn 65001) ~len:0))

let test_workload_chunk () =
  let arr = Array.init 7 (fun i -> i) in
  Alcotest.(check (list (list int))) "chunks of 3"
    [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 6 ] ]
    (Workload.chunk 3 arr);
  Alcotest.(check (list (list int))) "chunk of 1" [ [ 0 ] ]
    (Workload.chunk 1 [| 0 |]);
  Alcotest.(check (list (list int))) "empty" [] (Workload.chunk 5 [||]);
  Alcotest.check_raises "zero size"
    (Invalid_argument "Workload.chunk: size must be >= 1") (fun () ->
      ignore (Workload.chunk 0 arr))

let prop_chunk_partition =
  QCheck2.Test.make ~name:"chunk partitions without loss or reorder" ~count:300
    QCheck2.Gen.(pair (int_range 1 20) (array_size (int_range 0 100) int))
    (fun (n, arr) ->
      let chunks = Workload.chunk n arr in
      List.concat chunks = Array.to_list arr
      && List.for_all (fun c -> List.length c <= n && c <> []) chunks)

(* ------------------------------------------------------------------ *)
(* Table_io line format                                                *)
(* ------------------------------------------------------------------ *)

let entry ?(origin = A.Igp) ?med ?lp ?(comms = []) ~path prefix =
  { Table_io.e_prefix = pfx prefix; e_path = path; e_origin = origin;
    e_med = med; e_local_pref = lp; e_communities = comms }

let seq asns = As_path.of_asns (List.map asn asns)

let entry_eq a b =
  Bgp_addr.Prefix.equal a.Table_io.e_prefix b.Table_io.e_prefix
  && As_path.equal a.Table_io.e_path b.Table_io.e_path
  && a.Table_io.e_origin = b.Table_io.e_origin
  && a.Table_io.e_med = b.Table_io.e_med
  && a.Table_io.e_local_pref = b.Table_io.e_local_pref
  && List.equal Bgp_route.Community.equal a.Table_io.e_communities
       b.Table_io.e_communities

let roundtrip_line e =
  match Table_io.entry_of_line (Table_io.entry_to_line e) with
  | Ok e' -> e'
  | Error m -> Alcotest.failf "parse failed on %S: %s" (Table_io.entry_to_line e) m

let test_line_roundtrip_basic () =
  let e = entry ~path:(seq [ 7018; 701 ]) "203.0.113.0/24" in
  Alcotest.(check bool) "basic" true (entry_eq e (roundtrip_line e));
  let full =
    entry ~origin:A.Incomplete ~med:42 ~lp:150
      ~comms:[ Bgp_route.Community.make (asn 7018) 666 ]
      ~path:(seq [ 7018; 701; 3356 ])
      "10.0.0.0/8"
  in
  Alcotest.(check bool) "full" true (entry_eq full (roundtrip_line full))

let test_line_roundtrip_as_set () =
  let p =
    As_path.of_segments
      [ As_path.Seq [ asn 7018 ]; As_path.Set [ asn 3356; asn 2914 ];
        As_path.Seq [ asn 174 ] ]
  in
  let e = entry ~path:p "192.0.2.0/24" in
  Alcotest.(check bool) "as_set" true (entry_eq e (roundtrip_line e));
  Alcotest.(check bool) "rendered braces" true
    (String.contains (Table_io.entry_to_line e) '{')

let test_line_roundtrip_empty_path () =
  let e = entry ~path:As_path.empty "198.51.100.0/24" in
  Alcotest.(check bool) "empty path" true (entry_eq e (roundtrip_line e))

let test_line_errors () =
  List.iter
    (fun line ->
      match Table_io.entry_of_line line with
      | Ok _ -> Alcotest.failf "should reject %S" line
      | Error _ -> ())
    [ ""; "203.0.113.0/24"; "notaprefix path=1";
      "203.0.113.0/24 path=0" (* AS 0 *); "203.0.113.0/24 path=1 bogus";
      "203.0.113.0/24 path=1 med=abc"; "203.0.113.0/24 path={1,2";
      "203.0.113.0/24 path=1 comm=1:999999"; "10.0.0.1/24 path=1" ]

let test_line_duplicate_fields () =
  List.iter
    (fun (line, field) ->
      match Table_io.entry_of_line line with
      | Ok _ -> Alcotest.failf "should reject duplicate in %S" line
      | Error e ->
        let needle = Printf.sprintf "duplicate field %S" field in
        let has =
          let lh = String.length needle and l = String.length e in
          let rec go i = i + lh <= l && (String.sub e i lh = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "error names %s" field)
          true has)
    [ ("203.0.113.0/24 path=1,2 path=3", "path");
      ("203.0.113.0/24 path=1 med=5 med=6", "med");
      ("203.0.113.0/24 path=1 origin=igp origin=egp", "origin");
      ("203.0.113.0/24 path=1 lp=100 lp=200", "lp");
      ("203.0.113.0/24 path=1 comm=1:2 comm=3:4", "comm") ]

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let test_file_roundtrip () =
  let entries = Table_io.synthesize ~seed:5 ~n:200 ~speaker_asn:(asn 65001) () in
  let file = Filename.temp_file "bgpmark" ".table" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Table_io.save file entries;
      match Table_io.load file with
      | Error m -> Alcotest.failf "load failed: %s" m
      | Ok loaded ->
        Alcotest.(check int) "count" 200 (List.length loaded);
        List.iter2
          (fun a b ->
            if not (entry_eq a b) then
              Alcotest.failf "entry mismatch: %s vs %s" (Table_io.entry_to_line a)
                (Table_io.entry_to_line b))
          entries loaded)

let test_file_reports_bad_line () =
  let file = Filename.temp_file "bgpmark" ".table" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "# comment\n\n203.0.113.0/24 path=1\nbroken line here\n";
      close_out oc;
      match Table_io.load file with
      | Ok _ -> Alcotest.fail "should fail"
      | Error m ->
        Alcotest.(check bool) "mentions line 4" true
          (String.length m >= 6 && String.sub m 0 6 = "line 4"))

let test_synthesize_shape () =
  let entries = Table_io.synthesize ~seed:1 ~n:500 ~speaker_asn:(asn 65001) () in
  Alcotest.(check int) "count" 500 (List.length entries);
  List.iter
    (fun e ->
      let l = As_path.length e.Table_io.e_path in
      if l < 2 || l > 6 then Alcotest.failf "path length %d out of range" l;
      Alcotest.(check (option int)) "origin as" (Some 65001)
        (Option.map Bgp_route.Asn.to_int (As_path.first_hop e.Table_io.e_path)))
    entries;
  (* path lengths vary *)
  let lengths =
    List.sort_uniq compare
      (List.map (fun e -> As_path.length e.Table_io.e_path) entries)
  in
  Alcotest.(check bool) "varied" true (List.length lengths >= 4);
  (* deterministic *)
  let again = Table_io.synthesize ~seed:1 ~n:500 ~speaker_asn:(asn 65001) () in
  Alcotest.(check bool) "deterministic" true (List.for_all2 entry_eq entries again)

let test_to_attrs () =
  let e =
    entry ~med:9 ~path:(seq [ 65001; 7018 ]) "203.0.113.0/24"
  in
  let attrs = Table_io.to_attrs ~next_hop:(ip "192.0.2.1") e in
  Alcotest.(check (option int)) "med" (Some 9) attrs.A.med;
  Alcotest.(check string) "next hop" "192.0.2.1"
    (Bgp_addr.Ipv4.to_string attrs.A.next_hop);
  Alcotest.(check int) "path" 2 (As_path.length attrs.A.as_path)

(* Random entry property roundtrip *)
let gen_entry =
  QCheck2.Gen.(
    let* a = int_range 0 0xFFFF_FFFF in
    let* len = int_range 8 32 in
    let* npath = int_range 0 5 in
    let* path = list_size (return npath) (int_range 1 65535) in
    let* origin = oneofl [ A.Igp; A.Egp; A.Incomplete ] in
    let* med = option (int_range 0 10000) in
    let* lp = option (int_range 0 10000) in
    let* ncomm = int_range 0 3 in
    let* comms = list_size (return ncomm) (pair (int_range 1 65535) (int_range 0 65535)) in
    return
      { Table_io.e_prefix = Bgp_addr.Prefix.make (Bgp_addr.Ipv4.of_int a) len;
        e_path = As_path.of_asns (List.map asn path);
        e_origin = origin; e_med = med; e_local_pref = lp;
        e_communities = List.map (fun (a, v) -> Bgp_route.Community.make (asn a) v) comms })

let prop_line_roundtrip =
  QCheck2.Test.make ~name:"entry line roundtrip" ~count:500 gen_entry (fun e ->
      match Table_io.entry_of_line (Table_io.entry_to_line e) with
      | Ok e' -> entry_eq e e'
      | Error _ -> false)

let qtests tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "bgp_speaker"
    [ ( "workload",
        Alcotest.test_case "path construction" `Quick test_workload_path
        :: Alcotest.test_case "chunking" `Quick test_workload_chunk
        :: qtests [ prop_chunk_partition ] );
      ( "table_io lines",
        Alcotest.test_case "roundtrip basic" `Quick test_line_roundtrip_basic
        :: Alcotest.test_case "roundtrip as_set" `Quick test_line_roundtrip_as_set
        :: Alcotest.test_case "roundtrip empty path" `Quick
             test_line_roundtrip_empty_path
        :: Alcotest.test_case "rejects malformed" `Quick test_line_errors
        :: Alcotest.test_case "rejects duplicate fields" `Quick
             test_line_duplicate_fields
        :: Alcotest.test_case "to_attrs" `Quick test_to_attrs
        :: qtests [ prop_line_roundtrip ] );
      ( "table_io files",
        [ Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "bad line reported" `Quick test_file_reports_bad_line;
          Alcotest.test_case "synthesize shape" `Quick test_synthesize_shape
        ] )
    ]
