(* Real-socket interop: two BGP endpoints over loopback TCP in one
   process, driven by the select loop. *)

module Fsm = Bgp_fsm.Fsm
module Session = Bgp_fsm.Session
module Msg = Bgp_wire.Msg

let ip = Bgp_addr.Ipv4.of_string_exn
let asn = Bgp_route.Asn.of_int
let port_base = 42100 + (Unix.getpid () mod 500)

let attrs =
  Bgp_route.Attrs.make
    ~as_path:(Bgp_route.As_path.of_asns [ asn 65001; asn 7018 ])
    ~next_hop:(ip "127.0.0.1") ()

let test_loopback_session () =
  let loop = Bgp_tcp.Event_loop.create () in
  let port = port_base in
  let received = ref 0 in
  let listener_hooks =
    { Session.null_hooks with
      Session.on_update =
        (fun u -> received := !received + List.length u.Msg.nlri) }
  in
  let listener =
    Bgp_tcp.Endpoint.listen loop ~port
      ~cfg:(Fsm.default_config ~asn:(asn 65000) ~router_id:(ip "10.0.0.1"))
      ~hooks:listener_hooks
  in
  let connector =
    Bgp_tcp.Endpoint.connect loop ~port
      ~cfg:(Fsm.default_config ~asn:(asn 65001) ~router_id:(ip "10.0.0.2"))
      ~hooks:Session.null_hooks
  in
  Bgp_tcp.Endpoint.start listener;
  Bgp_tcp.Endpoint.start connector;
  let both_up () =
    Bgp_tcp.Endpoint.state listener = Fsm.Established
    && Bgp_tcp.Endpoint.state connector = Fsm.Established
  in
  if not (Bgp_tcp.Event_loop.run loop ~until:both_up ~timeout:10.0) then
    Alcotest.failf "sessions did not establish (listener %s, connector %s)"
      (Fsm.state_name (Bgp_tcp.Endpoint.state listener))
      (Fsm.state_name (Bgp_tcp.Endpoint.state connector));
  (* push 1000 prefixes in 10 large updates over the real socket *)
  let table = Bgp_addr.Prefix_gen.table ~seed:3 ~n:1000 () in
  List.iter
    (fun chunk -> ignore (Bgp_tcp.Endpoint.send connector (Msg.announcement attrs chunk)))
    (Bgp_speaker.Workload.chunk 100 table);
  let all_received () = !received = 1000 in
  if not (Bgp_tcp.Event_loop.run loop ~until:all_received ~timeout:10.0) then
    Alcotest.failf "only %d/1000 prefixes received" !received;
  Bgp_tcp.Endpoint.close connector;
  Bgp_tcp.Endpoint.close listener

let test_notification_on_garbage () =
  let loop = Bgp_tcp.Event_loop.create () in
  let port = port_base + 1 in
  let down_reason = ref "" in
  let listener =
    Bgp_tcp.Endpoint.listen loop ~port
      ~cfg:(Fsm.default_config ~asn:(asn 65000) ~router_id:(ip "10.0.0.1"))
      ~hooks:
        { Session.null_hooks with
          Session.on_down = (fun r -> down_reason := r) }
  in
  Bgp_tcp.Endpoint.start listener;
  (* A raw TCP client that talks garbage instead of BGP. *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let connected () = Bgp_tcp.Endpoint.state listener <> Fsm.Active in
  ignore (Bgp_tcp.Event_loop.run loop ~until:connected ~timeout:5.0);
  ignore (Unix.write fd (Bytes.make 32 '\x00') 0 32);
  let is_down () = Bgp_tcp.Endpoint.state listener = Fsm.Idle in
  if not (Bgp_tcp.Event_loop.run loop ~until:is_down ~timeout:5.0) then
    Alcotest.fail "listener should reset on garbage";
  (* The listener sent us its OPEN first, then a NOTIFICATION for the
     garbage: walk the messages and confirm the last one is type 3. *)
  let buf = Buffer.create 128 in
  let chunk = Bytes.create 128 in
  (try
     let rec slurp () =
       match Unix.read fd chunk 0 128 with
       | 0 -> ()
       | n ->
         Buffer.add_subbytes buf chunk 0 n;
         slurp ()
     in
     slurp ()
   with Unix.Unix_error _ -> ());
  let data = Buffer.contents buf in
  let rec last_type pos acc =
    if pos + 19 > String.length data then acc
    else
      let len = (Char.code data.[pos + 16] lsl 8) lor Char.code data.[pos + 17] in
      let ty = Char.code data.[pos + 18] in
      if len < 19 then acc else last_type (pos + len) (Some ty)
  in
  (match last_type 0 None with
  | Some ty -> Alcotest.(check int) "last message is NOTIFICATION" 3 ty
  | None -> Alcotest.fail "no reply messages captured");
  Unix.close fd;
  Bgp_tcp.Endpoint.close listener;
  Alcotest.(check bool) "reason recorded" true (!down_reason <> "")

(* ------------------------------------------------------------------ *)
(* Transport backpressure                                              *)
(* ------------------------------------------------------------------ *)

let test_backpressure_small_writes () =
  (* Regression for the O(n^2) partial-write requeue: enqueue tens of
     thousands of small messages while the reader is stalled (the loop
     is not pumped), so the kernel buffer fills and the output queue
     grows; then drain and check every byte arrived intact and in
     order.  The old list-rebuilding queue made this quadratic. *)
  let loop = Bgp_tcp.Event_loop.create () in
  let link = Bgp_tcp.Tcp_link.pair loop in
  let connected = ref 0 in
  let received = Buffer.create (1 lsl 20) in
  link.Bgp_tcp.Tcp_link.connector.Bgp_engine.Link.set_on_connected (fun () ->
      incr connected);
  link.Bgp_tcp.Tcp_link.listener.Bgp_engine.Link.set_on_connected (fun () ->
      incr connected);
  link.Bgp_tcp.Tcp_link.listener.Bgp_engine.Link.set_receiver (fun bytes ->
      Buffer.add_string received bytes);
  link.Bgp_tcp.Tcp_link.connector.Bgp_engine.Link.start_connect ();
  if not (Bgp_tcp.Event_loop.run loop ~until:(fun () -> !connected = 2) ~timeout:5.0)
  then Alcotest.fail "link did not connect";
  let n = 50_000 in
  let expected = Buffer.create (1 lsl 20) in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    (* 64-byte distinct payloads: big enough total (3.2 MB) to overrun
       the socket buffers, small enough each to stress per-message
       queueing. *)
    let msg = Printf.sprintf "%08d:%s\n" i (String.make 54 'x') in
    Buffer.add_string expected msg;
    link.Bgp_tcp.Tcp_link.connector.Bgp_engine.Link.send msg
  done;
  let enqueue_dt = Unix.gettimeofday () -. t0 in
  let total = Buffer.length expected in
  let drained () = Buffer.length received = total in
  if not (Bgp_tcp.Event_loop.run loop ~until:drained ~timeout:30.0) then
    Alcotest.failf "only %d/%d bytes drained" (Buffer.length received) total;
  Alcotest.(check bool) "payload intact and in order" true
    (String.equal (Buffer.contents received) (Buffer.contents expected));
  (* The quadratic requeue took minutes here; the ring takes well under
     a second.  A loose wall-clock bound keeps the regression caught
     without being flaky on slow machines. *)
  Alcotest.(check bool) "enqueue phase is not quadratic" true
    (enqueue_dt < 10.0);
  link.Bgp_tcp.Tcp_link.dispose ()

(* ------------------------------------------------------------------ *)
(* Event-loop timers                                                   *)
(* ------------------------------------------------------------------ *)

let test_timer_firing_order () =
  (* Let several timers all come due before the loop runs: they must
     still fire in fire_at order, not insertion order. *)
  let loop = Bgp_tcp.Event_loop.create () in
  let fired = ref [] in
  let note tag () = fired := tag :: !fired in
  let (_ : unit -> unit) = Bgp_tcp.Event_loop.after loop 0.03 (note "c") in
  let (_ : unit -> unit) = Bgp_tcp.Event_loop.after loop 0.01 (note "a") in
  let (_ : unit -> unit) = Bgp_tcp.Event_loop.after loop 0.02 (note "b") in
  Unix.sleepf 0.05;
  ignore
    (Bgp_tcp.Event_loop.run loop
       ~until:(fun () -> List.length !fired = 3)
       ~timeout:2.0);
  Alcotest.(check (list string)) "deadline order" [ "a"; "b"; "c" ]
    (List.rev !fired)

let test_timer_cancel_within_batch () =
  (* A timer cancelled by an earlier timer of the same due batch must
     not fire. *)
  let loop = Bgp_tcp.Event_loop.create () in
  let fired = ref [] in
  let cancel_b = ref ignore in
  let (_ : unit -> unit) =
    Bgp_tcp.Event_loop.after loop 0.01 (fun () ->
        fired := "a" :: !fired;
        !cancel_b ())
  in
  cancel_b :=
    Bgp_tcp.Event_loop.after loop 0.02 (fun () -> fired := "b" :: !fired);
  let (_ : unit -> unit) = Bgp_tcp.Event_loop.after loop 0.03 (fun () -> fired := "c" :: !fired) in
  Unix.sleepf 0.05;
  ignore
    (Bgp_tcp.Event_loop.run loop
       ~until:(fun () -> List.mem "c" !fired)
       ~timeout:2.0);
  Alcotest.(check (list string)) "b cancelled" [ "a"; "c" ] (List.rev !fired)

let test_timer_beyond_old_poll_cap () =
  (* The loop sleeps to the real next deadline now (no 100 ms poll
     cap); a timer well past that cap must still fire on time. *)
  let loop = Bgp_tcp.Event_loop.create () in
  let fired = ref false in
  let (_ : unit -> unit) = Bgp_tcp.Event_loop.after loop 0.25 (fun () -> fired := true) in
  let t0 = Unix.gettimeofday () in
  let ok =
    Bgp_tcp.Event_loop.run loop ~until:(fun () -> !fired) ~timeout:5.0
  in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "fired" true ok;
  Alcotest.(check bool) "not early" true (dt >= 0.24);
  Alcotest.(check bool) "not stuck" true (dt < 2.0)

let () =
  Alcotest.run "bgp_tcp"
    [ ( "loopback",
        [ Alcotest.test_case "full session over real TCP" `Quick test_loopback_session;
          Alcotest.test_case "garbage triggers notification" `Quick
            test_notification_on_garbage
        ] );
      ( "backpressure",
        [ Alcotest.test_case "small writes vs stalled reader" `Quick
            test_backpressure_small_writes
        ] );
      ( "timers",
        [ Alcotest.test_case "firing order" `Quick test_timer_firing_order;
          Alcotest.test_case "cancel within due batch" `Quick
            test_timer_cancel_within_batch;
          Alcotest.test_case "beyond the old poll cap" `Quick
            test_timer_beyond_old_poll_cap
        ] )
    ]
