(* Tests for lib/topo: generators, convergence, determinism, policy. *)

module Topology = Bgp_topo.Topology
module Net = Bgp_topo.Net
module Gao_rexford = Bgp_topo.Gao_rexford
module Partition = Bgp_topo.Partition

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_generator_shapes () =
  let line = Topology.make Topology.Line ~n:5 in
  check_int "line edges" 4 (Topology.edge_count line);
  let ring = Topology.make Topology.Ring ~n:5 in
  check_int "ring edges" 5 (Topology.edge_count ring);
  check "ring wraps" true (Topology.is_edge ring 0 4);
  let star = Topology.make Topology.Star ~n:6 in
  check_int "star edges" 5 (Topology.edge_count star);
  check_int "star hub degree" 5 (Topology.degree star 0);
  let clique = Topology.make Topology.Clique ~n:5 in
  check_int "clique edges" 10 (Topology.edge_count clique);
  let grid = Topology.make Topology.Grid ~n:9 in
  (* 3x3 grid: 6 horizontal + 6 vertical *)
  check_int "grid edges" 12 (Topology.edge_count grid);
  let ba = Topology.make Topology.Scale_free ~n:16 in
  (* triangle (3) + 2 per additional vertex *)
  check_int "BA edges" (3 + (2 * 13)) (Topology.edge_count ba)

let connected topo =
  let n = topo.Topology.n in
  let seen = Array.make n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs (Topology.neighbors topo v)
    end
  in
  dfs 0;
  Array.for_all Fun.id seen

let test_generators_connected () =
  List.iter
    (fun kind ->
      List.iter
        (fun n ->
          let topo = Topology.make kind ~n in
          check
            (Printf.sprintf "%s n=%d connected" (Topology.kind_to_string kind) n)
            true (connected topo))
        [ 2; 3; 7; 16 ])
    Topology.all_kinds

let test_generator_determinism () =
  let a = Topology.make ~seed:7 Topology.Scale_free ~n:24 in
  let b = Topology.make ~seed:7 Topology.Scale_free ~n:24 in
  check "same seed, same graph" true (a.Topology.edges = b.Topology.edges);
  let c = Topology.make ~seed:8 Topology.Scale_free ~n:24 in
  check "different seed, different graph" true
    (a.Topology.edges <> c.Topology.edges)

(* ------------------------------------------------------------------ *)
(* Convergence                                                         *)
(* ------------------------------------------------------------------ *)

let test_clique_convergence () =
  let net = Net.create (Topology.make Topology.Clique ~n:4) in
  Net.establish net;
  Net.originate_all net;
  let dt = Net.converge ~what:"clique full origination" net in
  check "positive convergence time" true (dt > 0.0);
  for i = 0 to 3 do
    for j = 0 to 3 do
      check
        (Printf.sprintf "%d reaches %d" i j)
        true (Net.reachability net i j)
    done;
    check_int
      (Printf.sprintf "node %d loc-rib size" i)
      4 (Net.node_stats net i).Net.ns_loc_rib_size
  done

let test_withdraw_reconvergence () =
  let net = Net.create (Topology.make Topology.Ring ~n:6) in
  Net.establish net;
  Net.originate net 0;
  ignore (Net.converge ~what:"announce" net);
  check "all nodes reach origin" true
    (List.for_all (fun i -> Net.reachability net i 0) [ 1; 2; 3; 4; 5 ]);
  Net.withdraw_origin net 0;
  ignore (Net.converge ~what:"withdraw" net);
  check "withdraw flushed everywhere" true
    (List.for_all (fun i -> not (Net.reachability net i 0)) [ 1; 2; 3; 4; 5 ])

(* ------------------------------------------------------------------ *)
(* Determinism: acceptance gate for the subsystem                      *)
(* ------------------------------------------------------------------ *)

let converged_ba16 () =
  let net = Net.create (Topology.make ~seed:7 Topology.Scale_free ~n:16) in
  Net.establish net;
  Net.originate_all net;
  let dt = Net.converge ~what:"BA-16 full origination" net in
  (net, dt)

let test_ba16_deterministic () =
  let net1, dt1 = converged_ba16 () in
  let net2, dt2 = converged_ba16 () in
  Alcotest.(check (float 0.0)) "identical convergence time" dt1 dt2;
  for i = 0 to 15 do
    let s1 = Net.node_stats net1 i and s2 = Net.node_stats net2 i in
    check_int
      (Printf.sprintf "node %d updates_rx" i)
      s1.Net.ns_updates_rx s2.Net.ns_updates_rx;
    check_int
      (Printf.sprintf "node %d msgs_tx" i)
      s1.Net.ns_msgs_tx s2.Net.ns_msgs_tx;
    Alcotest.(check string)
      (Printf.sprintf "node %d loc-rib" i)
      (Net.loc_rib_fingerprint net1 i)
      (Net.loc_rib_fingerprint net2 i)
  done

(* ------------------------------------------------------------------ *)
(* Scenario drivers                                                    *)
(* ------------------------------------------------------------------ *)

let ok_run = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "verification failed: %s" e

let test_scenario11_ring () =
  let r =
    Bgp_topo.Topo_bench.run_convergence ~kind:Topology.Ring ~n:8 ()
  in
  ok_run r.Bgp_topo.Topo_bench.cr_verified;
  check_int "all nodes reached" 8 r.Bgp_topo.Topo_bench.cr_reached;
  check "announce converged in positive time" true
    (r.Bgp_topo.Topo_bench.cr_announce_s > 0.0);
  check "announce generated updates" true
    (r.Bgp_topo.Topo_bench.cr_announce_updates > 0)

let test_scenario12_ba16_path_hunting () =
  (* Cut a hub edge whose endpoints share no good alternate: on this
     seeded graph the 0-7 cut transiently starves several nodes of all
     candidates (split-horizon hid the detours), forcing genuine
     withdraw-then-relearn path exploration, not a one-step switch. *)
  let r =
    Bgp_topo.Topo_bench.run_link_failure ~seed:7 ~kind:Topology.Scale_free
      ~n:16 ~cut:(0, 7) ()
  in
  ok_run r.Bgp_topo.Topo_bench.lf_verified;
  check "cut survivable" false r.Bgp_topo.Topo_bench.lf_partitioned;
  check "re-convergence takes time" true
    (r.Bgp_topo.Topo_bench.lf_heal_s > 0.0);
  check "some prefixes affected" true
    (r.Bgp_topo.Topo_bench.lf_affected > 0);
  (* The acceptance gate: the cut must trigger measurable path hunting,
     i.e. some (node, prefix) pair explores more than one path. *)
  check "path hunting observed" true
    (r.Bgp_topo.Topo_bench.lf_max_explored > 1);
  check "withdrawals flowed" true (r.Bgp_topo.Topo_bench.lf_withdrawn_rx > 0)

let test_scenario12_partition () =
  let r =
    Bgp_topo.Topo_bench.run_link_failure ~kind:Topology.Line ~n:4 ()
  in
  check "line cut partitions" true r.Bgp_topo.Topo_bench.lf_partitioned;
  ok_run r.Bgp_topo.Topo_bench.lf_verified

(* ------------------------------------------------------------------ *)
(* Gao-Rexford policies                                                *)
(* ------------------------------------------------------------------ *)

let test_gao_rexford_tiers () =
  check_int "vertex 0 tier" 0 (Gao_rexford.tier 0);
  check_int "vertex 1 tier" 1 (Gao_rexford.tier 1);
  check_int "vertex 2 tier" 1 (Gao_rexford.tier 2);
  check_int "vertex 3 tier" 2 (Gao_rexford.tier 3);
  check_int "vertex 6 tier" 2 (Gao_rexford.tier 6);
  check_int "vertex 7 tier" 3 (Gao_rexford.tier 7);
  check "1-2 peer" true
    (Gao_rexford.relation_between ~self:1 ~neighbor:2 = Gao_rexford.Peer);
  check "0 sees 1 as customer" true
    (Gao_rexford.relation_between ~self:0 ~neighbor:1 = Gao_rexford.Customer);
  check "1 sees 0 as provider" true
    (Gao_rexford.relation_between ~self:1 ~neighbor:0 = Gao_rexford.Provider)

(* Line 0-1-2: edge 0-1 is provider-customer, edge 1-2 is peer-peer.
   Valley-free means node 1 must not carry traffic between its provider
   and its peer: 0's prefix never reaches 2 and 2's never reaches 0. *)
let test_gao_rexford_valley_free () =
  let net =
    Net.create ~mode:Net.Gao_rexford (Topology.make Topology.Line ~n:3)
  in
  Net.establish net;
  Net.originate_all net;
  ignore (Net.converge ~what:"gao-rexford line" net);
  check "1 reaches 0 (customer to provider)" true (Net.reachability net 1 0);
  check "1 reaches 2 (peer)" true (Net.reachability net 1 2);
  check "0 reaches 1 (provider of 1)" true (Net.reachability net 0 1);
  check "2 reaches 1 (peer)" true (Net.reachability net 2 1);
  check "2 must NOT reach 0 (provider route not exported to a peer)" false
    (Net.reachability net 2 0);
  check "0 must NOT reach 2 (peer route not exported to a provider)" false
    (Net.reachability net 0 2)

let test_gao_rexford_oracle_agrees () =
  List.iter
    (fun (kind, n) ->
      let r =
        Bgp_topo.Topo_bench.run_convergence ~mode:Net.Gao_rexford ~seed:5
          ~kind ~n ()
      in
      ok_run r.Bgp_topo.Topo_bench.cr_verified)
    [ (Topology.Line, 6); (Topology.Ring, 7); (Topology.Star, 5);
      (Topology.Grid, 9); (Topology.Scale_free, 12) ]

(* ------------------------------------------------------------------ *)
(* Router regression: duplicate peer attachment                        *)
(* ------------------------------------------------------------------ *)

let test_duplicate_attach_rejected () =
  let module Engine = Bgp_sim.Engine in
  let module Router = Bgp_router.Router in
  let module Channel = Bgp_netsim.Channel in
  let engine = Engine.create () in
  let router =
    Router.create (Engine.clock engine) Bgp_router.Arch.pentium3
      ~local_asn:(Bgp_route.Asn.of_int 65000)
      ~router_id:(Bgp_addr.Ipv4.of_octets 192 0 2 1)
  in
  let peer id =
    Bgp_route.Peer.make ~id ~asn:(Bgp_route.Asn.of_int 65001)
      ~router_id:(Bgp_addr.Ipv4.of_octets 192 0 2 2)
      ~addr:(Bgp_addr.Ipv4.of_octets 192 0 2 2)
  in
  let ch1 = Channel.create engine () in
  Router.attach_peer router ~peer:(peer 0) ~link:(Channel.endpoint ch1 Channel.A);
  let ch2 = Channel.create engine () in
  Alcotest.check_raises "duplicate id rejected"
    (Invalid_argument "Router.attach_peer: duplicate id 0") (fun () ->
      Router.attach_peer router ~peer:(peer 0)
        ~link:(Channel.endpoint ch2 Channel.A))

(* ------------------------------------------------------------------ *)
(* Partitioner                                                         *)
(* ------------------------------------------------------------------ *)

let test_partition_assign () =
  List.iter
    (fun (kind, n) ->
      let topo = Topology.make ~seed:7 kind ~n in
      List.iter
        (fun parts ->
          let label fmt =
            Printf.ksprintf
              (fun s ->
                Printf.sprintf "%s n=%d parts=%d: %s"
                  (Topology.kind_to_string kind) n parts s)
              fmt
          in
          let part = Partition.assign topo ~parts in
          check_int (label "length") n (Array.length part);
          Array.iter
            (fun p -> check (label "in range") true (p >= 0 && p < parts))
            part;
          let cap = (n + parts - 1) / parts in
          Array.iter
            (fun s -> check (label "balance cap") true (s <= cap))
            (Partition.sizes part ~parts);
          check (label "deterministic") true
            (part = Partition.assign topo ~parts))
        [ 1; 2; 3; 4 ])
    [ (Topology.Scale_free, 24); (Topology.Ring, 16); (Topology.Grid, 16) ];
  let line = Topology.make Topology.Line ~n:8 in
  check "parts=1 is all-zero" true
    (Array.for_all (fun p -> p = 0) (Partition.assign line ~parts:1));
  Alcotest.check_raises "parts=0 rejected"
    (Invalid_argument "Partition.assign: parts must be >= 1") (fun () ->
      ignore (Partition.assign line ~parts:0));
  Alcotest.check_raises "parts>n rejected"
    (Invalid_argument "Partition.assign: 9 partitions for 8 vertices")
    (fun () -> ignore (Partition.assign line ~parts:9))

let test_partition_cut_edges () =
  let ring = Topology.make Topology.Ring ~n:16 in
  let part = Partition.assign ring ~parts:2 in
  let cut = Partition.cut_edges ring part in
  (* A ring split into two contiguous arcs cuts exactly 2 edges; any
     2-partition of a cycle cuts an even, positive number. *)
  check "ring cut is positive and even" true (cut > 0 && cut mod 2 = 0);
  check_int "parts=1 cuts nothing" 0
    (Partition.cut_edges ring (Partition.assign ring ~parts:1))

(* ------------------------------------------------------------------ *)
(* Multi-domain differential                                           *)
(* ------------------------------------------------------------------ *)

(* Satellite property: on random small graphs the converged Loc-RIB
   and FIB of every node are independent of the domain count. *)
let prop_domains_equivalent =
  QCheck2.Test.make ~name:"domains 1 vs 2..4: same Loc-RIBs and FIBs"
    ~count:8
    QCheck2.Gen.(
      quad (int_range 0 2) (int_range 8 20) (int_range 1 10_000)
        (int_range 2 4))
    (fun (kind_ix, n, seed, domains) ->
      let kind =
        [| Topology.Scale_free; Topology.Ring; Topology.Grid |].(kind_ix)
      in
      let topo = Topology.make ~seed kind ~n in
      let converged d =
        let net = Net.create ~domains:d topo in
        Net.establish net;
        Net.originate net 0;
        ignore (Net.converge ~what:"announce" net);
        List.init n (fun i ->
            (Net.loc_rib_fingerprint net i, Net.fib_fingerprint net i))
      in
      converged 1 = converged domains)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "topo"
    [ ( "topology",
        [ Alcotest.test_case "generator shapes" `Quick test_generator_shapes;
          Alcotest.test_case "generators connected" `Quick
            test_generators_connected;
          Alcotest.test_case "scale-free determinism" `Quick
            test_generator_determinism ] );
      ( "net",
        [ Alcotest.test_case "clique convergence" `Quick
            test_clique_convergence;
          Alcotest.test_case "withdraw re-convergence" `Quick
            test_withdraw_reconvergence;
          Alcotest.test_case "BA-16 deterministic" `Quick
            test_ba16_deterministic ] );
      ( "scenarios",
        [ Alcotest.test_case "scenario 11 on a ring" `Quick
            test_scenario11_ring;
          Alcotest.test_case "scenario 12 path hunting (BA-16)" `Quick
            test_scenario12_ba16_path_hunting;
          Alcotest.test_case "scenario 12 partition (line)" `Quick
            test_scenario12_partition ] );
      ( "gao-rexford",
        [ Alcotest.test_case "tiers and relations" `Quick
            test_gao_rexford_tiers;
          Alcotest.test_case "valley-free line" `Quick
            test_gao_rexford_valley_free;
          Alcotest.test_case "oracle agreement" `Quick
            test_gao_rexford_oracle_agrees ] );
      ( "router",
        [ Alcotest.test_case "duplicate attach rejected" `Quick
            test_duplicate_attach_rejected ] );
      ( "partition",
        [ Alcotest.test_case "greedy assignment" `Quick test_partition_assign;
          Alcotest.test_case "cut edges" `Quick test_partition_cut_edges ] );
      ( "multi-domain",
        List.map QCheck_alcotest.to_alcotest [ prop_domains_equivalent ] ) ]
