(* Tests for the structured trace subsystem (lib/trace): ring-buffer
   bounds, sampling decimation, FIFO clamping, the harness integration
   (all seven pipeline stages traced on pipelined AND fused layouts),
   determinism with tracing on, and the Chrome exporter / summary. *)

module Tracer = Bgp_trace.Tracer
module Chrome = Bgp_trace.Chrome
module Summary = Bgp_trace.Summary
module Arch = Bgp_router.Arch
module H = Bgpmark.Harness
module Scenario = Bgpmark.Scenario

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let all_stages =
  [ "wire-decode"; "import-policy"; "adj-rib-in"; "decision"; "fib-install";
    "export-policy"; "mrai-pacing" ]

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_bounds () =
  let tr = Tracer.create ~capacity:8 () in
  let tk = Tracer.track tr ~thread:"t" () in
  for i = 0 to 19 do
    Tracer.instant tr tk ~name:(Printf.sprintf "e%d" i)
      ~ts:(float_of_int i) ()
  done;
  Alcotest.(check int) "recorded counts everything" 20 (Tracer.recorded tr);
  Alcotest.(check int) "dropped = overflow" 12 (Tracer.dropped tr);
  let evs = Tracer.events tr in
  Alcotest.(check int) "ring keeps capacity" 8 (List.length evs);
  (* oldest-first drain: the survivors are events 12..19 *)
  Alcotest.(check string) "oldest survivor" "e12"
    (List.hd evs).Tracer.ev_name;
  Alcotest.(check string) "newest survivor" "e19"
    (List.nth evs 7).Tracer.ev_name;
  Tracer.clear tr;
  Alcotest.(check int) "clear empties" 0 (List.length (Tracer.events tr))

let test_sampling () =
  let tr = Tracer.create ~sample:4 () in
  let hits = List.init 12 (fun _ -> Tracer.sample_this tr) in
  Alcotest.(check (list bool)) "1-in-4 decimation, first kept"
    [ true; false; false; false; true; false; false; false;
      true; false; false; false ]
    hits;
  (* sim_hit runs on an independent counter *)
  Alcotest.(check bool) "sim counter independent" true (Tracer.sim_hit tr);
  Alcotest.(check bool) "sim counter advances" false (Tracer.sim_hit tr)

let test_span_fifo_clamps () =
  let tr = Tracer.create () in
  let tk = Tracer.track tr ~thread:"cpu" () in
  let s1, f1 = Tracer.span_fifo tr tk ~name:"a" ~dispatch:0.0 ~finish:1.0 () in
  (* dispatched while "a" still runs: must be pushed past its end *)
  let s2, f2 = Tracer.span_fifo tr tk ~name:"b" ~dispatch:0.5 ~finish:1.5 () in
  Alcotest.(check (float 1e-9)) "first starts at dispatch" 0.0 s1;
  Alcotest.(check (float 1e-9)) "first ends at finish" 1.0 f1;
  Alcotest.(check (float 1e-9)) "second clamped to first end" 1.0 s2;
  Alcotest.(check (float 1e-9)) "second keeps finish" 1.5 f2;
  match Tracer.events tr with
  | [ _; b ] ->
    let wait =
      List.assoc "wait_s" b.Tracer.ev_args |> function
      | Tracer.Float w -> w
      | _ -> Alcotest.fail "wait_s must be a float"
    in
    Alcotest.(check (float 1e-9)) "queueing delay attached" 0.5 wait
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Harness integration                                                 *)
(* ------------------------------------------------------------------ *)

let small_config tracer =
  { H.default_config with H.table_size = 200; tracer }

let scenario n = Option.get (Scenario.of_id n)

let span_names tr =
  List.filter_map
    (fun e ->
      match e.Tracer.ev_phase with
      | Tracer.Span -> Some e.Tracer.ev_name
      | _ -> None)
    (Tracer.events tr)

let run_traced arch =
  let tr = Tracer.create () in
  let r = H.run ~config:(small_config (Some tr)) arch (scenario 1) in
  (tr, r)

let test_all_stages_pipelined () =
  let tr, _ = run_traced Arch.pentium3 in
  let names = span_names tr in
  List.iter
    (fun st ->
      Alcotest.(check bool) (st ^ " traced") true (List.mem st names))
    all_stages;
  (* per-update latency spans ride along as async events *)
  let asyncs =
    List.filter (fun e -> e.Tracer.ev_phase = Tracer.Async) (Tracer.events tr)
  in
  Alcotest.(check bool) "update spans present" true (asyncs <> [])

let test_all_stages_fused () =
  let cisco = Option.get (Arch.by_name "cisco3620") in
  let tr, _ = run_traced cisco in
  let names = span_names tr in
  List.iter
    (fun st ->
      Alcotest.(check bool) (st ^ " traced (fused)") true (List.mem st names))
    all_stages;
  Alcotest.(check bool) "fused outer job slice" true
    (List.mem "update-job" names)

(* On any single simulated core (track), timed slices must either be
   disjoint or properly nested (the fused layout nests per-stage slices
   inside the outer update-job slice): that is what makes the exported
   trace render as a sane stack in the Chrome viewer.  A partial
   overlap — starting inside one slice but ending after it — is the
   geometry the FIFO clamp exists to prevent. *)
let test_no_overlap_per_track () =
  let check_arch arch =
    let tr, _ = run_traced arch in
    let by_track = Hashtbl.create 16 in
    List.iter
      (fun e ->
        if e.Tracer.ev_phase = Tracer.Span && e.Tracer.ev_dur > 0.0 then begin
          let k = Tracer.track_id e.Tracer.ev_track in
          let l = Option.value ~default:[] (Hashtbl.find_opt by_track k) in
          Hashtbl.replace by_track k (e :: l)
        end)
      (Tracer.events tr);
    let eps = 1e-9 in
    Hashtbl.iter
      (fun _ evs ->
        (* sort like the exporter: start asc, longest (outermost) first *)
        let evs =
          List.sort
            (fun a b ->
              match compare a.Tracer.ev_ts b.Tracer.ev_ts with
              | 0 -> compare b.Tracer.ev_dur a.Tracer.ev_dur
              | c -> c)
            (List.rev evs)
        in
        (* stack of enclosing slice end-times *)
        let stack = ref [] in
        List.iter
          (fun e ->
            let e_end = e.Tracer.ev_ts +. e.Tracer.ev_dur in
            stack :=
              List.filter (fun fin -> fin > e.Tracer.ev_ts +. eps) !stack;
            (match !stack with
             | fin :: _ when e_end > fin +. eps ->
               Alcotest.failf "%s: partial overlap on %s/%s at t=%g"
                 arch.Arch.name
                 (Tracer.track_process e.Tracer.ev_track)
                 (Tracer.track_thread e.Tracer.ev_track)
                 e.Tracer.ev_ts
             | _ -> ());
            stack := e_end :: !stack)
          evs)
      by_track
  in
  check_arch Arch.pentium3;
  check_arch (Option.get (Arch.by_name "cisco3620"))

let test_tracing_is_observational () =
  let base = H.run ~config:(small_config None) Arch.pentium3 (scenario 1) in
  let _, traced = run_traced Arch.pentium3 in
  Alcotest.(check (float 0.0)) "tps identical with tracing on"
    base.H.tps traced.H.tps;
  Alcotest.(check int) "transactions identical"
    base.H.measured_prefixes traced.H.measured_prefixes

let test_fsm_transitions_traced () =
  let tr, _ = run_traced Arch.pentium3 in
  let fsm =
    List.filter (fun e -> e.Tracer.ev_name = "fsm") (Tracer.events tr)
  in
  Alcotest.(check bool) "fsm transitions recorded" true (fsm <> []);
  let has_established =
    List.exists
      (fun e ->
        List.exists
          (fun (k, v) -> k = "to" && v = Tracer.Str "Established")
          e.Tracer.ev_args)
      fsm
  in
  Alcotest.(check bool) "reaches Established" true has_established

let test_fault_fates_traced () =
  let tr = Tracer.create () in
  let config =
    { (small_config (Some tr)) with H.table_size = 150; fault_rounds = 2 }
  in
  let r = H.run ~config Arch.pentium3 (scenario 9) in
  Alcotest.(check bool) "adversarial run verified" true
    (Result.is_ok r.H.verified);
  let fates =
    List.filter
      (fun e ->
        String.length e.Tracer.ev_name > 6
        && String.sub e.Tracer.ev_name 0 6 = "fault:")
      (Tracer.events tr)
  in
  Alcotest.(check bool) "fault fates recorded" true (fates <> [])

(* ------------------------------------------------------------------ *)
(* Exporter and summary                                                *)
(* ------------------------------------------------------------------ *)

let test_chrome_export () =
  let tr, _ = run_traced Arch.pentium3 in
  let s = Chrome.to_string tr in
  Alcotest.(check bool) "has traceEvents" true (contains s "\"traceEvents\"");
  Alcotest.(check bool) "has process metadata" true
    (contains s "\"process_name\"");
  Alcotest.(check bool) "names the harness cell" true
    (contains s "pentium3/scenario-1");
  List.iter
    (fun st ->
      Alcotest.(check bool) (st ^ " exported") true
        (contains s (Printf.sprintf "\"%s\"" st)))
    all_stages;
  (* async update spans export as paired b/e events *)
  Alcotest.(check bool) "async begin" true (contains s "\"ph\":\"b\"");
  Alcotest.(check bool) "async end" true (contains s "\"ph\":\"e\"")

let test_summary_rows () =
  let tr, _ = run_traced Arch.pentium3 in
  let rows = Summary.rows ~k:3 tr in
  Alcotest.(check bool) "has rows" true (rows <> []);
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (row.Summary.su_name ^ " count positive") true (row.Summary.su_count > 0);
      Alcotest.(check bool)
        (row.Summary.su_name ^ " keeps <= k slowest") true
        (List.length row.Summary.su_slowest <= 3))
    rows;
  (* total-duration ordering, heaviest first *)
  let totals = List.map (fun r -> r.Summary.su_total) rows in
  Alcotest.(check bool) "sorted by total desc" true
    (List.sort (fun a b -> compare b a) totals = totals);
  let txt = Summary.render tr in
  Alcotest.(check bool) "render banner" true (contains txt "Trace summary");
  Alcotest.(check bool) "render mentions decision stage" true
    (contains txt "decision")

let () =
  Alcotest.run "bgp_trace"
    [ ( "recorder",
        [ Alcotest.test_case "ring bounds" `Quick test_ring_bounds;
          Alcotest.test_case "sampling" `Quick test_sampling;
          Alcotest.test_case "fifo clamping" `Quick test_span_fifo_clamps
        ] );
      ( "harness",
        [ Alcotest.test_case "stages pipelined" `Quick test_all_stages_pipelined;
          Alcotest.test_case "stages fused" `Quick test_all_stages_fused;
          Alcotest.test_case "no per-core overlap" `Quick test_no_overlap_per_track;
          Alcotest.test_case "observational" `Quick test_tracing_is_observational;
          Alcotest.test_case "fsm transitions" `Quick test_fsm_transitions_traced;
          Alcotest.test_case "fault fates" `Quick test_fault_fates_traced
        ] );
      ( "export",
        [ Alcotest.test_case "chrome json" `Quick test_chrome_export;
          Alcotest.test_case "summary" `Quick test_summary_rows
        ] )
    ]
