open Bgp_wire
module A = Bgp_route.Attrs
module Asn = Bgp_route.Asn
module As_path = Bgp_route.As_path
module Community = Bgp_route.Community
module Ipv4 = Bgp_addr.Ipv4
module Prefix = Bgp_addr.Prefix

let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn
let asn = Asn.of_int

let msg_testable =
  Alcotest.testable Msg.pp (fun a b ->
      (* Structural equality is adequate here except for attrs; compare
         through the printer to keep the testable simple and total. *)
      match a, b with
      | Msg.Update x, Msg.Update y ->
        List.equal Prefix.equal x.Msg.withdrawn y.Msg.withdrawn
        && List.equal Prefix.equal x.Msg.nlri y.Msg.nlri
        && Option.equal A.Interned.equal x.Msg.attrs y.Msg.attrs
      | a, b -> a = b)

let roundtrip m =
  match Codec.decode (Codec.encode m) with
  | Ok m' -> m'
  | Error e -> Alcotest.failf "decode failed: %s" (Format.asprintf "%a" Msg.pp_error e)

let expect_error name buf pred =
  match Codec.decode buf with
  | Ok m -> Alcotest.failf "%s: expected error, decoded %s" name (Msg.kind_name m)
  | Error e ->
    if not (pred e) then
      Alcotest.failf "%s: wrong error %s" name (Format.asprintf "%a" Msg.pp_error e)

let set_byte s i v =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr v);
  Bytes.to_string b

let attrs ?med ?local_pref ?(communities = []) path_asns =
  A.make ?med ?local_pref ~communities
    ~as_path:(As_path.of_asns (List.map asn path_asns))
    ~next_hop:(ip "192.0.2.7") ()

(* ------------------------------------------------------------------ *)
(* Exact wire images                                                   *)
(* ------------------------------------------------------------------ *)

let test_keepalive_bytes () =
  let w = Codec.encode Msg.Keepalive in
  Alcotest.(check int) "length" 19 (String.length w);
  for i = 0 to 15 do
    Alcotest.(check char) "marker" '\xFF' w.[i]
  done;
  Alcotest.(check int) "len hi" 0 (Char.code w.[16]);
  Alcotest.(check int) "len lo" 19 (Char.code w.[17]);
  Alcotest.(check int) "type" 4 (Char.code w.[18])

let test_open_bytes () =
  let m = Msg.open_msg ~hold_time:180 ~asn:(asn 65100) ~bgp_id:(ip "10.0.0.1") () in
  let w = Codec.encode m in
  Alcotest.(check int) "length" 29 (String.length w);
  Alcotest.(check int) "type" 1 (Char.code w.[18]);
  Alcotest.(check int) "version" 4 (Char.code w.[19]);
  Alcotest.(check int) "asn"
    65100
    ((Char.code w.[20] lsl 8) lor Char.code w.[21]);
  Alcotest.(check int) "hold" 180 ((Char.code w.[22] lsl 8) lor Char.code w.[23]);
  Alcotest.(check (list int)) "bgp id" [ 10; 0; 0; 1 ]
    [ Char.code w.[24]; Char.code w.[25]; Char.code w.[26]; Char.code w.[27] ];
  Alcotest.(check int) "no params" 0 (Char.code w.[28])

let test_notification_bytes () =
  let w = Codec.encode (Msg.Notification Msg.Hold_timer_expired) in
  Alcotest.(check int) "length" 21 (String.length w);
  Alcotest.(check int) "code" 4 (Char.code w.[19]);
  Alcotest.(check int) "sub" 0 (Char.code w.[20])

let test_update_nlri_bytes () =
  (* One /24 announcement: header(19) + wlen(2) + alen(2) + attrs + nlri(4) *)
  let m = Msg.announcement (attrs [ 65001 ]) [ pfx "203.0.113.0/24" ] in
  let w = Codec.encode m in
  (* attrs: origin(4) + as_path(3+2+2)=... flags,code,len = 3 bytes each hdr *)
  (* origin: 3+1=4; as_path: 3 + (1+1+2)=7; next_hop: 3+4=7  => 18 *)
  let expect = 19 + 2 + 2 + 18 + 4 in
  Alcotest.(check int) "length" expect (String.length w);
  (* NLRI tail: 24, 203, 0, 113 *)
  let n = String.length w in
  Alcotest.(check (list int)) "nlri" [ 24; 203; 0; 113 ]
    [ Char.code w.[n - 4]; Char.code w.[n - 3]; Char.code w.[n - 2];
      Char.code w.[n - 1] ]

(* ------------------------------------------------------------------ *)
(* Roundtrips                                                          *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_open () =
  let m =
    Msg.open_msg ~hold_time:90
      ~params:[ Msg.Capability (Msg.Multiprotocol (1, 1)); Msg.Capability Msg.Route_refresh ]
      ~asn:(asn 7018) ~bgp_id:(ip "198.51.100.1") ()
  in
  Alcotest.check msg_testable "open" m (roundtrip m)

let test_roundtrip_update_full () =
  let a =
    A.make ~origin:A.Egp ~med:42 ~local_pref:150 ~atomic_aggregate:true
      ~aggregator:(asn 7018, ip "10.9.9.9")
      ~communities:[ Community.make (asn 7018) 666; Community.no_export ]
      ~originator_id:(ip "10.0.0.7")
      ~cluster_list:[ ip "10.0.0.1"; ip "10.0.0.2" ]
      ~as_path:
        (As_path.of_segments
           [ As_path.Seq [ asn 7018; asn 701 ]; As_path.Set [ asn 3356; asn 2914 ] ])
      ~next_hop:(ip "192.0.2.7") ()
  in
  let m =
    Msg.update
      ~withdrawn:[ pfx "10.0.0.0/8"; pfx "172.16.0.0/12"; pfx "0.0.0.0/0" ]
      ~attrs:a
      ~nlri:[ pfx "203.0.113.0/24"; pfx "198.51.100.128/25"; pfx "192.0.2.1/32" ]
      ()
  in
  Alcotest.check msg_testable "update" m (roundtrip m)

let test_roundtrip_withdraw_only () =
  let m = Msg.withdrawal [ pfx "10.0.0.0/8" ] in
  Alcotest.check msg_testable "withdraw" m (roundtrip m)

let test_roundtrip_keepalive_notification () =
  Alcotest.check msg_testable "ka" Msg.Keepalive (roundtrip Msg.Keepalive);
  List.iter
    (fun e ->
      let m = Msg.Notification e in
      match roundtrip m with
      | Msg.Notification e' ->
        Alcotest.(check (pair int int)) "code preserved" (Msg.error_code e)
          (Msg.error_code e')
      | other -> Alcotest.failf "expected notification, got %s" (Msg.kind_name other))
    [ Msg.Hold_timer_expired; Msg.Fsm_error; Msg.Cease;
      Msg.Open_message_error Msg.Bad_peer_as;
      Msg.Update_message_error Msg.Invalid_network_field;
      Msg.Message_header_error Msg.Connection_not_synchronized ]

let test_route_refresh () =
  let w = Codec.encode Msg.route_refresh in
  Alcotest.(check int) "length" 23 (String.length w);
  Alcotest.(check int) "type" 5 (Char.code w.[18]);
  (match Codec.decode w with
  | Ok (Msg.Route_refresh (1, 1)) -> ()
  | _ -> Alcotest.fail "roundtrip failed");
  (* arbitrary AFI/SAFI *)
  (match Codec.decode (Codec.encode (Msg.Route_refresh (2, 128))) with
  | Ok (Msg.Route_refresh (2, 128)) -> ()
  | _ -> Alcotest.fail "afi/safi roundtrip");
  (* wrong length for type 5 must be rejected *)
  let bad = set_byte (set_byte w 16 0) 17 25 in
  expect_error "bad refresh length" (bad ^ "xx") (function
    | Msg.Message_header_error (Msg.Bad_message_length _) -> true
    | _ -> false)

let test_roundtrip_big_update () =
  (* The paper's "large packet": 500 prefixes in one UPDATE. *)
  let table = Bgp_addr.Prefix_gen.table ~seed:9 ~n:500 () in
  let m = Msg.announcement (attrs [ 65001; 65002 ]) (Array.to_list table) in
  let w = Codec.encode m in
  Alcotest.(check bool) "fits in max size" true (String.length w <= Msg.max_len);
  Alcotest.check msg_testable "roundtrip" m (roundtrip m);
  Alcotest.(check int) "count" 500 (Msg.nlri_count (roundtrip m))

(* ------------------------------------------------------------------ *)
(* Malformed input                                                     *)
(* ------------------------------------------------------------------ *)

let test_bad_marker () =
  let w = set_byte (Codec.encode Msg.Keepalive) 3 0 in
  expect_error "marker" w (function
    | Msg.Message_header_error Msg.Connection_not_synchronized -> true
    | _ -> false)

let test_bad_length () =
  (* Header claims more than buffer holds. *)
  let w = Codec.encode Msg.Keepalive in
  let w = set_byte w 17 200 in
  expect_error "length" w (function
    | Msg.Message_header_error (Msg.Bad_message_length _) -> true
    | _ -> false);
  (* Length below the 19-byte minimum. *)
  let w2 = set_byte (Codec.encode Msg.Keepalive) 17 10 in
  expect_error "short" w2 (function
    | Msg.Message_header_error (Msg.Bad_message_length _) -> true
    | _ -> false)

let test_bad_type () =
  let w = set_byte (Codec.encode Msg.Keepalive) 18 9 in
  expect_error "type" w (function
    | Msg.Message_header_error (Msg.Bad_message_type 9) -> true
    | _ -> false)

let test_truncated () =
  let w = Codec.encode (Msg.open_msg ~asn:(asn 1) ~bgp_id:(ip "1.1.1.1") ()) in
  let w = String.sub w 0 (String.length w - 2) in
  expect_error "truncated" w (function
    | Msg.Message_header_error (Msg.Bad_message_length _) -> true
    | _ -> false)

let test_bad_open_fields () =
  let base = Codec.encode (Msg.open_msg ~asn:(asn 1) ~bgp_id:(ip "1.1.1.1") ()) in
  (* version 3 *)
  expect_error "version" (set_byte base 19 3) (function
    | Msg.Open_message_error (Msg.Unsupported_version 3) -> true
    | _ -> false);
  (* AS 0 *)
  let w = set_byte (set_byte base 20 0) 21 0 in
  expect_error "as0" w (function
    | Msg.Open_message_error Msg.Bad_peer_as -> true
    | _ -> false);
  (* hold time 2 *)
  let w = set_byte (set_byte base 22 0) 23 2 in
  expect_error "hold" w (function
    | Msg.Open_message_error Msg.Unacceptable_hold_time -> true
    | _ -> false);
  (* bgp id 0.0.0.0 *)
  let w = set_byte (set_byte (set_byte (set_byte base 24 0) 25 0) 26 0) 27 0 in
  expect_error "id" w (function
    | Msg.Open_message_error Msg.Bad_bgp_identifier -> true
    | _ -> false)

let test_bad_update () =
  (* NLRI present but no attributes: craft update with wlen=0 alen=0 nlri. *)
  let b = Buffer.create 32 in
  for _ = 1 to 16 do Buffer.add_char b '\xFF' done;
  let body = "\x00\x00\x00\x00\x18\xCB\x00\x71" (* wlen=0 alen=0 nlri 203.0.113/24 *) in
  let total = 19 + String.length body in
  Buffer.add_char b (Char.chr (total lsr 8));
  Buffer.add_char b (Char.chr (total land 0xFF));
  Buffer.add_char b '\x02';
  Buffer.add_string b body;
  expect_error "nlri no attrs" (Buffer.contents b) (function
    | Msg.Update_message_error (Msg.Missing_wellknown_attribute _) -> true
    | _ -> false)

let test_bad_prefix_length () =
  (* Withdrawn prefix with length 33. *)
  let b = Buffer.create 32 in
  for _ = 1 to 16 do Buffer.add_char b '\xFF' done;
  let body = "\x00\x05\x21\x0A\x00\x00\x00\x00\x00" (* wlen=5, /33 prefix, alen=0 *) in
  let total = 19 + String.length body in
  Buffer.add_char b (Char.chr (total lsr 8));
  Buffer.add_char b (Char.chr (total land 0xFF));
  Buffer.add_char b '\x02';
  Buffer.add_string b body;
  expect_error "prefix len 33" (Buffer.contents b) (function
    | Msg.Update_message_error Msg.Invalid_network_field -> true
    | _ -> false)

let test_trailing_garbage () =
  let w = Codec.encode Msg.Keepalive ^ "x" in
  expect_error "trailing" w (function
    | Msg.Message_header_error (Msg.Bad_message_length _) -> true
    | _ -> false)

let update_frame body =
  let b = Buffer.create 32 in
  for _ = 1 to 16 do Buffer.add_char b '\xFF' done;
  let total = 19 + String.length body in
  Buffer.add_char b (Char.chr (total lsr 8));
  Buffer.add_char b (Char.chr (total land 0xFF));
  Buffer.add_char b '\x02';
  Buffer.add_string b body;
  Buffer.contents b

let check_bad_length what w expected =
  match Codec.decode w with
  | Error (Msg.Message_header_error (Msg.Bad_message_length l)) ->
    Alcotest.(check int) what expected l
  | Error e ->
    Alcotest.failf "%s: wrong error %s" what
      (Format.asprintf "%a" Msg.pp_error e)
  | Ok _ -> Alcotest.failf "%s: expected error" what

let test_declared_length_reported () =
  (* RFC 4271 §6.1: Bad_message_length carries the erroneous Length
     field, so the NOTIFICATION data names the bad frame — never a
     meaningless 0. *)
  (* A body read that silently runs off the declared message end (the
     attribute-length u16 here has only one byte left) must report the
     header's declared length. *)
  let w = update_frame "\x00\x02\x00\x00\x00" in
  check_bad_length "reader overrun reports declared length" w
    (String.length w);
  (* An optional-parameters length claiming bytes past the message end
     is itself the erroneous Length field. *)
  let base = Codec.encode (Msg.open_msg ~asn:(asn 1) ~bgp_id:(ip "1.1.1.1") ()) in
  check_bad_length "erroneous opt-param length" (set_byte base 28 200) 200;
  (* And through the header path: a length field beyond the buffer. *)
  check_bad_length "header-declared length"
    (set_byte (set_byte base 16 0x12) 17 0x34)
    0x1234

let test_truncated_attr_bodies () =
  (* Attribute header cut off after the flags octet: the attribute
     list as a whole is malformed (§6.3). *)
  expect_error "flags only" (update_frame "\x00\x00\x00\x01\x40") (function
    | Msg.Update_message_error Msg.Malformed_attribute_list -> true
    | _ -> false);
  (* Extended-length attribute with only one of its two length octets:
     Attribute Length Error naming the attribute. *)
  expect_error "half extended length"
    (update_frame "\x00\x00\x00\x03\x50\x0E\x01") (function
    | Msg.Update_message_error (Msg.Attribute_length_error 0x0E) -> true
    | _ -> false);
  (* Declared attribute value longer than the remaining attribute
     section: ORIGIN claiming 2 bytes with 1 present. *)
  expect_error "value overruns section"
    (update_frame "\x00\x00\x00\x04\x40\x01\x02\x00") (function
    | Msg.Update_message_error (Msg.Attribute_length_error 0x01) -> true
    | _ -> false)

let test_truncated_nlri_body () =
  (* NLRI whose prefix bytes are cut off by the message end. *)
  let a = attrs [ 65001 ] in
  let good = Codec.encode (Msg.announcement a [ pfx "203.0.113.0/24" ]) in
  (* Drop the last NLRI byte and fix the header length so the frame is
     complete but the /24 has only two address bytes. *)
  let cut = String.length good - 1 in
  let w = set_byte (set_byte (String.sub good 0 cut) 16 (cut lsr 8)) 17 (cut land 0xFF) in
  expect_error "nlri cut" w (function
    | Msg.Update_message_error Msg.Invalid_network_field -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Streaming / framing                                                 *)
(* ------------------------------------------------------------------ *)

let test_decode_at_stream () =
  let m1 = Msg.Keepalive in
  let m2 = Msg.announcement (attrs [ 1; 2 ]) [ pfx "10.0.0.0/8" ] in
  let stream = Codec.encode m1 ^ Codec.encode m2 in
  (match Codec.decode_at stream ~pos:0 with
  | Ok (m, consumed) ->
    Alcotest.check msg_testable "first" m1 m;
    (match Codec.decode_at stream ~pos:consumed with
    | Ok (m, c2) ->
      Alcotest.check msg_testable "second" m2 m;
      Alcotest.(check int) "consumed all" (String.length stream) (consumed + c2)
    | Error _ -> Alcotest.fail "second decode failed")
  | Error _ -> Alcotest.fail "first decode failed")

let test_required_length () =
  let w = Codec.encode (Msg.open_msg ~asn:(asn 1) ~bgp_id:(ip "1.1.1.1") ()) in
  (match Codec.required_length w ~pos:0 ~avail:10 with
  | Ok None -> ()
  | _ -> Alcotest.fail "partial header should be None");
  (match Codec.required_length w ~pos:0 ~avail:19 with
  | Ok (Some n) -> Alcotest.(check int) "full length" (String.length w) n
  | _ -> Alcotest.fail "header should yield length");
  let bad = set_byte w 0 0 in
  match Codec.required_length bad ~pos:0 ~avail:19 with
  | Error (Msg.Message_header_error Msg.Connection_not_synchronized) -> ()
  | _ -> Alcotest.fail "bad marker must error"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_ipv4 = QCheck2.Gen.map Ipv4.of_int (QCheck2.Gen.int_range 1 0xFFFF_FFFF)
let gen_prefix =
  QCheck2.Gen.map2 (fun a l -> Prefix.make a l) gen_ipv4 (QCheck2.Gen.int_range 0 32)

let gen_asn = QCheck2.Gen.map Asn.of_int (QCheck2.Gen.int_range 1 65535)

let gen_seg =
  QCheck2.Gen.(
    bind bool (fun is_set ->
        map
          (fun l -> if is_set then As_path.Set l else As_path.Seq l)
          (list_size (int_range 1 6) gen_asn)))

let gen_attrs =
  QCheck2.Gen.(
    let* segs = list_size (int_range 0 3) gen_seg in
    let* origin = oneofl [ A.Igp; A.Egp; A.Incomplete ] in
    let* med = option (int_range 0 1000000) in
    let* lp = option (int_range 0 1000000) in
    let* atomic = bool in
    let* aggr = option (pair gen_asn gen_ipv4) in
    let* ncomm = int_range 0 4 in
    let* comm_raw = list_size (return ncomm) (int_range 0 0xFFFF_FFFF) in
    let* nh = gen_ipv4 in
    let* oid = option gen_ipv4 in
    let* ncl = int_range 0 3 in
    let* cl = list_size (return ncl) gen_ipv4 in
    return
      (A.make ~origin ?med ?local_pref:lp ~atomic_aggregate:atomic ?aggregator:aggr
         ~communities:(List.map Community.of_int32_value comm_raw)
         ?originator_id:oid ~cluster_list:cl
         ~as_path:(As_path.of_segments segs) ~next_hop:nh ()))

let gen_update =
  QCheck2.Gen.(
    let* withdrawn = list_size (int_range 0 20) gen_prefix in
    let* nlri = list_size (int_range 0 20) gen_prefix in
    let* a = gen_attrs in
    let attrs = if nlri = [] then None else Some (A.Interned.intern a) in
    return (Msg.Update { Msg.withdrawn; attrs; nlri }))

let update_eq a b =
  match a, b with
  | Msg.Update x, Msg.Update y ->
    List.equal Prefix.equal x.Msg.withdrawn y.Msg.withdrawn
    && List.equal Prefix.equal x.Msg.nlri y.Msg.nlri
    && Option.equal A.Interned.equal x.Msg.attrs y.Msg.attrs
  | _ -> false

let prop_update_roundtrip =
  QCheck2.Test.make ~name:"update encode/decode roundtrip" ~count:500 gen_update
    (fun m ->
      match Codec.decode (Codec.encode m) with
      | Ok m' -> update_eq m m'
      | Error _ -> false)

let prop_open_roundtrip =
  QCheck2.Test.make ~name:"open encode/decode roundtrip" ~count:500
    QCheck2.Gen.(
      let* a = gen_asn in
      let* hold = oneof [ return 0; int_range 3 65535 ] in
      let* id = gen_ipv4 in
      return (Msg.open_msg ~hold_time:hold ~asn:a ~bgp_id:id ()))
    (fun m ->
      match Codec.decode (Codec.encode m) with Ok m' -> m = m' | Error _ -> false)

let prop_encoded_size_consistent =
  QCheck2.Test.make ~name:"encoded_size matches encode, within bounds" ~count:300
    gen_update (fun m ->
      let w = Codec.encode m in
      Codec.encoded_size m = String.length w
      && String.length w >= Msg.header_len
      && String.length w <= Msg.max_len
      && ((Char.code w.[16] lsl 8) lor Char.code w.[17]) = String.length w)

let prop_corrupt_never_panics =
  (* Any single-byte corruption either still decodes or yields a typed
     error — never an exception. *)
  QCheck2.Test.make ~name:"single-byte corruption yields Ok or typed error"
    ~count:500
    QCheck2.Gen.(pair gen_update (pair small_nat (int_range 0 255)))
    (fun (m, (pos, v)) ->
      let w = Codec.encode m in
      let pos = pos mod String.length w in
      let b = Bytes.of_string w in
      Bytes.set b pos (Char.chr v);
      match Codec.decode (Bytes.to_string b) with
      | Ok _ | Error _ -> true)

let prop_multi_corrupt_never_panics =
  (* Multi-byte corruption: up to 8 random flips on one encoding.  The
     decoder must still return Ok or a typed error — in particular no
     Invalid_argument escaping from out-of-bounds reads. *)
  QCheck2.Test.make ~name:"multi-byte corruption yields Ok or typed error"
    ~count:500
    QCheck2.Gen.(
      pair gen_update (list_size (int_range 1 8) (pair small_nat (int_range 0 255))))
    (fun (m, flips) ->
      let b = Bytes.of_string (Codec.encode m) in
      List.iter
        (fun (pos, v) -> Bytes.set b (pos mod Bytes.length b) (Char.chr v))
        flips;
      match Codec.decode (Bytes.to_string b) with
      | Ok _ | Error _ -> true)

let prop_truncation_never_panics =
  (* Length-fixed truncation (the fault injector's second mutation):
     cut the tail, rewrite the header length so the frame is complete.
     Every cut point must decode or produce a well-formed Msg.error. *)
  QCheck2.Test.make ~name:"length-fixed truncation yields Ok or typed error"
    ~count:500
    QCheck2.Gen.(pair gen_update small_nat)
    (fun (m, cut) ->
      let w = Codec.encode m in
      let n = String.length w in
      if n <= Msg.header_len then true
      else begin
        let total = Msg.header_len + (cut mod (n - Msg.header_len)) in
        let b = Bytes.sub (Bytes.unsafe_of_string w) 0 total in
        Bytes.set b 16 (Char.chr ((total lsr 8) land 0xFF));
        Bytes.set b 17 (Char.chr (total land 0xFF));
        match Codec.decode (Bytes.to_string b) with
        | Ok _ -> true
        | Error e ->
          (* the error must itself be printable and carry a valid
             RFC 4271 code pair *)
          let c, _ = Msg.error_code e in
          ignore (Format.asprintf "%a" Msg.pp_error e);
          c >= 1 && c <= 6
      end)

let prop_raw_truncation_never_panics =
  (* Raw truncation without the length fixup: the streaming entry
     points must either ask for more bytes or return a typed error. *)
  QCheck2.Test.make ~name:"raw truncation never raises" ~count:500
    QCheck2.Gen.(pair gen_update small_nat)
    (fun (m, keep) ->
      let w = Codec.encode m in
      let keep = keep mod (String.length w + 1) in
      let cut = String.sub w 0 keep in
      (match Codec.required_length cut ~pos:0 ~avail:keep with
      | Ok _ | Error _ -> ());
      match Codec.decode cut with Ok _ | Error _ -> true)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "bgp_wire"
    [ ( "wire images",
        [ Alcotest.test_case "keepalive" `Quick test_keepalive_bytes;
          Alcotest.test_case "open" `Quick test_open_bytes;
          Alcotest.test_case "notification" `Quick test_notification_bytes;
          Alcotest.test_case "update nlri" `Quick test_update_nlri_bytes
        ] );
      ( "roundtrips",
        [ Alcotest.test_case "open with capabilities" `Quick test_roundtrip_open;
          Alcotest.test_case "update all attributes" `Quick test_roundtrip_update_full;
          Alcotest.test_case "withdraw only" `Quick test_roundtrip_withdraw_only;
          Alcotest.test_case "keepalive/notification" `Quick
            test_roundtrip_keepalive_notification;
          Alcotest.test_case "500-prefix update" `Quick test_roundtrip_big_update;
          Alcotest.test_case "route refresh" `Quick test_route_refresh
        ] );
      ( "malformed",
        [ Alcotest.test_case "bad marker" `Quick test_bad_marker;
          Alcotest.test_case "bad length" `Quick test_bad_length;
          Alcotest.test_case "bad type" `Quick test_bad_type;
          Alcotest.test_case "truncated" `Quick test_truncated;
          Alcotest.test_case "bad open fields" `Quick test_bad_open_fields;
          Alcotest.test_case "nlri without attrs" `Quick test_bad_update;
          Alcotest.test_case "prefix length 33" `Quick test_bad_prefix_length;
          Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
          Alcotest.test_case "declared length reported" `Quick
            test_declared_length_reported;
          Alcotest.test_case "truncated attribute bodies" `Quick
            test_truncated_attr_bodies;
          Alcotest.test_case "truncated nlri body" `Quick test_truncated_nlri_body
        ] );
      ( "framing",
        [ Alcotest.test_case "decode_at stream" `Quick test_decode_at_stream;
          Alcotest.test_case "required_length" `Quick test_required_length
        ] );
      qsuite "properties"
        [ prop_update_roundtrip; prop_open_roundtrip; prop_encoded_size_consistent;
          prop_corrupt_never_panics; prop_multi_corrupt_never_panics;
          prop_truncation_never_panics; prop_raw_truncation_never_panics ]
    ]
